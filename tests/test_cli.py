"""Command-line interface."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text('<r><a id="1"><b/></a><b/></r>')
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCLI:
    def test_basic_query(self, xml_file):
        code, out = run(["//a/b", xml_file])
        assert code == 0
        assert out.strip() == "2"

    def test_count(self, xml_file):
        code, out = run(["//b", xml_file, "--count"])
        assert code == 0
        assert out.strip() == "2"

    def test_labels(self, xml_file):
        code, out = run(["/r/*", xml_file, "--labels"])
        assert code == 0
        assert out.splitlines() == ["1\ta", "3\tb"]

    def test_strategies(self, xml_file):
        for strategy in ("naive", "hybrid", "deterministic"):
            code, out = run(["//b", xml_file, "--strategy", strategy])
            assert code == 0
            assert out.strip() == "2 3"

    def test_all_registered_strategies_accepted(self, xml_file):
        from repro.engine import registry

        for strategy in registry.strategy_names():
            code, out = run(["//b", xml_file, "--strategy", strategy])
            assert code == 0, strategy
            assert out.strip() == "2 3", strategy

    def test_list_strategies(self):
        from repro.engine import registry

        code, out = run(["--list-strategies"])
        assert code == 0
        listed = [line.split()[0] for line in out.strip().splitlines()]
        assert sorted(listed) == registry.strategy_names()
        # The recommended default leads the listing, with a summary.
        first = out.strip().splitlines()[0]
        assert first.split()[0] == "auto"
        assert len(first.split()) > 1, "auto has no one-line summary"

    def test_query_required_without_list_strategies(self, capsys):
        with pytest.raises(SystemExit):
            run([])

    def test_stats_emits_json(self, xml_file, capsys):
        import json

        code, out = run(["//b", xml_file, "--stats"])
        assert code == 0
        assert out.strip() == "2 3"
        stats = json.loads(capsys.readouterr().err.strip())
        assert stats["selected"] == 2
        assert stats["strategy"] == "auto"  # the planner is the default
        assert stats["query"] == "//b"
        assert stats["visited"] >= 2
        assert stats["nodes"] == 4
        # The bounded caches are surfaced for service observability.
        assert stats["caches"]["plans"]["size"] >= 1
        assert stats["caches"]["plans"]["maxsize"] > 0
        assert "fused" in stats["caches"]

    def test_explicit_strategy_reported_in_stats(self, xml_file, capsys):
        code, out = run(["//b", xml_file, "--strategy", "optimized", "--stats"])
        assert code == 0
        stats = json.loads(capsys.readouterr().err.strip())
        assert stats["strategy"] == "optimized"

    def test_plan_explain_json(self, xml_file):
        code, out = run(["plan", "explain", "//a/b", xml_file, "--json"])
        assert code == 0
        verdict = json.loads(out)
        assert verdict["strategy"] == "auto"
        assert verdict["planner"]["strategy"] in verdict["planner"]["costs"]
        assert verdict["executes_as"] in verdict["planner"]["costs"]

    def test_plan_explain_text(self, xml_file):
        code, out = run(["plan", "explain", "//a/b", xml_file])
        assert code == 0
        assert "planner: chose" in out
        assert "candidate costs" in out

    def test_plan_explain_backward_axis_resolves(self, xml_file):
        # Backward axes stay inside the planned fragment now: the window
        # strategy evaluates them natively (reverse window containment),
        # so the planner prices it as the sole candidate and freezes.
        code, out = run(["plan", "explain", "//b/parent::a", xml_file, "--json"])
        assert code == 0
        verdict = json.loads(out)
        assert verdict["strategy"] == "auto"
        assert verdict["executes_as"] == "window"
        assert verdict["planner"]["costs"] == {"window": pytest.approx(
            verdict["planner"]["estimate"]
        )}
        assert verdict["planner"]["frozen"] is True

    def test_explain(self, xml_file):
        code, out = run(["//a//b", xml_file, "--explain"])
        assert code == 0
        assert "ASTA" in out

    def test_attributes_flag(self, xml_file):
        code, out = run(["//a[@id]", xml_file, "--attributes", "--count"])
        assert code == 0
        assert out.strip() == "1"

    def test_xmark_generation(self):
        code, out = run(["//keyword", "--xmark", "0.05", "--count"])
        assert code == 0
        assert int(out.strip()) > 0

    def test_bad_query_is_an_error(self, xml_file):
        code, _ = run(["//a[", xml_file])
        assert code == 1

    def test_bad_xml_is_an_error(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        code, _ = run(["//a", str(path)])
        assert code == 1


class TestBatchCLI:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("K\t//a/b\n# a comment\n\n//b\n")
        return str(path)

    def test_batch_over_file(self, xml_file, query_file):
        import json

        code, out = run(
            ["batch", "--queries", query_file, xml_file, "--jobs", "2"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["results"] == {"K": [2], "q4": [2, 3]}
        assert payload["jobs"] == 2

    def test_batch_counts_on_xmark(self, query_file, tmp_path):
        import json

        path = tmp_path / "q.txt"
        path.write_text("//keyword\n")
        code, out = run(
            ["batch", "--queries", str(path), "--xmark", "0.05", "--count"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["results"]["q1"] > 0
        assert payload["document"] == "xmark"

    def test_batch_duplicate_names_rejected(self, xml_file, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("x\t//a\nx\t//b\n")
        code, _ = run(["batch", "--queries", str(path), xml_file])
        assert code == 1

    def test_batch_file_and_xmark_conflict(self, xml_file, query_file):
        with pytest.raises(SystemExit) as exc:
            run(
                ["batch", "--queries", query_file, xml_file, "--xmark", "0.1"]
            )
        assert exc.value.code == 2

    def test_batch_empty_query_file(self, xml_file, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("# nothing\n")
        code, _ = run(["batch", "--queries", str(path), xml_file])
        assert code == 1

    def test_batch_bad_query_is_an_error(self, xml_file, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("//a[\n")
        code, _ = run(["batch", "--queries", str(path), xml_file])
        assert code == 1


class TestStoreCLI:
    def test_build_ls_query_flow(self, xml_file, tmp_path):
        bundle = str(tmp_path / "bundle")
        code, out = run(["store", "build", bundle, xml_file])
        assert code == 0
        summary = json.loads(out)
        assert summary["nodes"] == 4 and summary["version"] == 2

        code, out = run(["store", "ls", bundle])
        assert code == 0
        assert json.loads(out)[0]["nodes"] == 4

        code, out = run(["store", "query", "//a/b", bundle])
        assert code == 0
        assert out.strip() == "2"

        code, out = run(["store", "query", "//b", bundle, "--count"])
        assert code == 0 and out.strip() == "2"

    def test_build_xmark_and_corpus_ls(self, tmp_path):
        root = tmp_path / "corpus"
        code, out = run(
            ["store", "build", str(root / "xm"), "--xmark", "0.02"]
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["nodes"] > 100

        code, out = run(["store", "ls", str(root)])
        assert code == 0
        listing = json.loads(out)
        assert [b["name"] for b in listing] == ["xm"]

        code, out = run(["store", "query", "//edge", str(root / "xm"), "--count"])
        assert code == 0
        assert int(out.strip()) > 0

    def test_build_legacy_tree_matches_streaming(self, xml_file, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert run(["store", "build", a, xml_file])[0] == 0
        assert run(["store", "build", b, xml_file, "--legacy-tree"])[0] == 0
        assert run(["store", "query", "//b", a])[1] == run(
            ["store", "query", "//b", b]
        )[1]

    def test_build_attributes_encoding(self, xml_file, tmp_path):
        bundle = str(tmp_path / "attrs")
        code, _ = run(["store", "build", bundle, xml_file, "--attributes"])
        assert code == 0
        code, out = run(["store", "query", "//a[@id]", bundle, "--count"])
        assert code == 0 and out.strip() == "1"

    def test_query_missing_bundle_is_an_error(self, tmp_path):
        code, _ = run(["store", "query", "//a", str(tmp_path / "nope")])
        assert code == 1

    def test_build_file_and_xmark_conflict(self, xml_file, tmp_path):
        with pytest.raises(SystemExit):
            run(["store", "build", str(tmp_path / "x"), xml_file, "--xmark", "1"])

    def test_query_stats_record_store(self, xml_file, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        run(["store", "build", bundle, xml_file])
        code, _ = run(["store", "query", "//b", bundle, "--stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().err)
        assert payload["store"].endswith("bundle")


class TestStructuredSyntaxErrors:
    def test_caret_rendering_on_stderr(self, xml_file, capsys):
        code, _ = run(["//a[b(", xml_file])
        assert code == 1
        err = capsys.readouterr().err
        lines = err.splitlines()
        assert lines[0].startswith("syntax error:")
        assert "(offset 5)" in lines[0]
        assert lines[1] == "  //a[b("
        assert lines[2] == "  " + " " * 5 + "^"

    def test_non_syntax_errors_keep_plain_format(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        code, _ = run(["//a", str(path)])
        assert code == 1
        assert capsys.readouterr().err.startswith("error: ")

    def test_batch_surfaces_caret_too(self, xml_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("//a[\n")
        code, _ = run(["batch", "--queries", str(queries), xml_file])
        assert code == 1
        assert "syntax error:" in capsys.readouterr().err


class TestStoreLsStats:
    def test_ls_reports_persisted_document_stats(self, xml_file, tmp_path):
        bundle = str(tmp_path / "bundle")
        code, _ = run(["store", "build", bundle, xml_file])
        assert code == 0
        code, out = run(["store", "ls", bundle])
        assert code == 0
        entry = json.loads(out)[0]
        assert entry["nodes"] == 4
        assert entry["height"] == 2
        assert entry["bytes"] > 0


class TestServeParsers:
    """Argument wiring for `repro serve` / `repro client` (the live
    daemon round trip is covered by tests/test_serve.py and the bench)."""

    def test_serve_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            run(["serve"])

    def test_serve_rejects_missing_store(self, tmp_path):
        code, _ = run(["serve", "--store", str(tmp_path / "nope")])
        assert code == 1

    def test_client_query_against_live_daemon(self, xml_file, tmp_path):
        import threading

        from repro.serve import DaemonThread, QueryDaemon

        bundle_root = str(tmp_path / "corpus")
        code, _ = run(["store", "build", bundle_root + "/doc", xml_file])
        assert code == 0
        with DaemonThread(QueryDaemon(bundle_root)) as handle:
            port = str(handle.port)
            code, out = run(
                ["client", "--port", port, "query", "//a/b", "--format", "csv"]
            )
            assert code == 0
            assert out.splitlines() == ["id", "2"]
            code, out = run(
                ["client", "--port", port, "stats", "--format", "json"]
            )
            assert code == 0
            assert json.loads(out)["counters"]["queries"] == 1

    def test_client_syntax_error_renders_caret(self, xml_file, tmp_path, capsys):
        from repro.serve import DaemonThread, QueryDaemon

        bundle_root = str(tmp_path / "corpus")
        run(["store", "build", bundle_root + "/doc", xml_file])
        with DaemonThread(QueryDaemon(bundle_root)) as handle:
            code, _ = run(
                ["client", "--port", str(handle.port), "query", "//a["]
            )
        assert code == 1
        err = capsys.readouterr().err
        assert "syntax error:" in err and "^" in err

    def test_client_connection_refused_is_an_error(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listening here now
        code, _ = run(["client", "--port", str(port), "health"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
