"""XPath -> ASTA compilation (Section 4.2, Examples 4.1 and C.1)."""

import pytest

from repro.asta.formula import TRUE, down, down_states, for_
from repro.xpath.compiler import XPathCompileError, compile_xpath


def state_by_suffix(asta, suffix):
    (match,) = [s for s in asta.states if s.endswith(suffix)]
    return match


class TestExample41:
    """//a//b[c] must compile to exactly the paper's automaton."""

    def test_shape(self):
        asta = compile_xpath("//a//b[c]")
        assert len(asta.states) == 3
        assert len(asta.transitions) == 6

    def test_transition_structure(self):
        asta = compile_xpath("//a//b[c]")
        qa = state_by_suffix(asta, "_a")
        qb = state_by_suffix(asta, "_b")
        qc = state_by_suffix(asta, "_c")
        by_kind = {}
        for t in asta.transitions:
            by_kind.setdefault(t.q, []).append(t)
        # q0, {a} -> ↓1 q1   and   q0, Σ -> ↓1 q0 ∨ ↓2 q0
        formulas_a = {t.formula for t in by_kind[qa]}
        assert down(1, qb) in formulas_a
        assert for_(down(1, qa), down(2, qa)) in formulas_a
        # q1, {b} => ↓1 q2 (selecting)
        sel = [t for t in by_kind[qb] if t.selecting]
        assert len(sel) == 1 and sel[0].formula == down(1, qc)
        assert sel[0].labels.contains("b") and not sel[0].labels.contains("x")
        # q2, {c} -> ⊤   and   q2, Σ -> ↓2 q2
        formulas_c = {t.formula for t in by_kind[qc]}
        assert TRUE in formulas_c
        assert down(2, qc) in formulas_c

    def test_top_state_is_first_step(self):
        asta = compile_xpath("//a//b[c]")
        assert asta.top == {state_by_suffix(asta, "_a")}


class TestExampleC1:
    """//x[(a1 or a2) and ... ] stays linear in the number of labels."""

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_linear_size(self, n):
        clauses = " and ".join(
            f"(a{2 * i + 1} or a{2 * i + 2})" for i in range(n)
        )
        asta = compile_xpath(f"//x[ {clauses} ]")
        states, transitions = asta.size()
        assert states == 2 * n + 1
        assert transitions == 4 * n + 2

    def test_selecting_formula_is_cnf_shaped(self):
        asta = compile_xpath("//x[(a1 or a2) and (a3 or a4)]")
        (sel,) = [t for t in asta.transitions if t.selecting]
        assert sel.formula[0] == "&"
        assert len(down_states(sel.formula)) == 4


class TestAxes:
    def test_child_axis_scans_right_spine(self):
        asta = compile_xpath("/a/b")
        qb = state_by_suffix(asta, "chil_b")
        recursion = [
            t for t in asta.transitions if t.q == qb and t.formula == down(2, qb)
        ]
        assert len(recursion) == 1

    def test_descendant_axis_scans_subtree(self):
        asta = compile_xpath("//a")
        (qa,) = asta.states
        recursion = [
            t
            for t in asta.transitions
            if t.q == qa and t.formula == for_(down(1, qa), down(2, qa))
        ]
        assert len(recursion) == 1

    def test_following_sibling_enters_via_down2(self):
        asta = compile_xpath("/a/following-sibling::b")
        qa = state_by_suffix(asta, "chil_a")
        (progress,) = [
            t
            for t in asta.transitions
            if t.q == qa and t.labels.contains("a") and t.formula != down(2, qa)
        ]
        side = {i for i, _q in down_states(progress.formula)}
        assert side == {2}

    def test_attribute_axis_uses_at_label(self):
        asta = compile_xpath("/a[@id]")
        labels = {
            name
            for t in asta.transitions
            for name in t.labels.mentioned()
        }
        assert "@id" in labels

    def test_wildcard_step(self):
        asta = compile_xpath("/site/*/item")
        q_star = state_by_suffix(asta, "chil_star")
        progress = [
            t
            for t in asta.transitions
            if t.q == q_star and t.formula != down(2, q_star)
        ]
        assert len(progress) == 1
        assert progress[0].labels.is_any()


class TestPredicates:
    def test_not_compiles_to_negation(self):
        asta = compile_xpath("//a[not(b)]")
        (progress,) = [
            t for t in asta.transitions if t.selecting
        ]
        assert progress.formula[0] == "!"

    def test_nested_predicate_states(self):
        asta = compile_xpath("//a[b[c]]")
        assert any(s.endswith("chil_c") for s in asta.states)

    def test_empty_dot_predicate_is_true(self):
        asta = compile_xpath("//a[.]")
        (progress,) = [t for t in asta.transitions if t.selecting]
        assert progress.formula == TRUE


class TestErrors:
    def test_relative_top_level_rejected(self):
        with pytest.raises(XPathCompileError):
            compile_xpath("a/b")

    def test_attribute_start_rejected(self):
        with pytest.raises(XPathCompileError):
            compile_xpath("/@id")

    def test_attribute_wildcard_rejected(self):
        with pytest.raises(XPathCompileError):
            compile_xpath("/a[@*]")

    def test_absolute_pred_path_rejected(self):
        with pytest.raises(XPathCompileError):
            compile_xpath("//a[/b]")

    def test_backward_axes_rejected(self):
        with pytest.raises(XPathCompileError):
            compile_xpath("//a/..")
        with pytest.raises(XPathCompileError):
            compile_xpath("//a[../b]")
