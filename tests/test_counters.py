"""EvalStats counters."""

from repro.counters import EvalStats


class TestEvalStats:
    def test_defaults_zero(self):
        s = EvalStats()
        assert s.visited == 0 and s.selected == 0 and s.memo_entries == 0

    def test_visit_increments(self):
        s = EvalStats()
        s.visit()
        s.visit(3)
        assert s.visited == 4

    def test_ratio(self):
        s = EvalStats(visited=200, selected=50)
        assert s.ratio_selected_visited() == 25.0

    def test_ratio_zero_visited(self):
        assert EvalStats().ratio_selected_visited() == 0.0

    def test_merge(self):
        a = EvalStats(visited=1, selected=2, memo_entries=3, jumps=4)
        b = EvalStats(visited=10, selected=20, memo_entries=30, jumps=40)
        a.merge(b)
        assert (a.visited, a.selected, a.memo_entries, a.jumps) == (11, 22, 33, 44)

    def test_snapshot_keys(self):
        snap = EvalStats().snapshot()
        assert set(snap) == {
            "visited",
            "selected",
            "memo_entries",
            "memo_hits",
            "jumps",
            "index_probes",
        }
