"""Deterministic path compilation and the Section 3 end-to-end pipeline."""

import pytest
from hypothesis import given, settings

from repro import Engine
from repro.automata.minimize import minimize_tdsta
from repro.automata.pathdet import NotPathShaped, is_path_shaped, path_tdsta
from repro.automata.relevance import topdown_relevant
from repro.counters import EvalStats
from repro.engine.deterministic import compile_tdsta, evaluate
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees

PATH_QUERIES = ["//a//b", "/r/a/b", "//a/b//c", "/r//b", "//a", "/r/*/b"]
NON_PATH_QUERIES = ["//a[b]", "//a[not(b)]//c", "//a[b or c]"]


class TestShapeDetection:
    @pytest.mark.parametrize("query", PATH_QUERIES)
    def test_path_queries_qualify(self, query):
        assert is_path_shaped(compile_xpath(query))

    @pytest.mark.parametrize("query", NON_PATH_QUERIES)
    def test_predicates_disqualify(self, query):
        assert not is_path_shaped(compile_xpath(query))

    def test_path_tdsta_rejects_predicates(self):
        with pytest.raises(NotPathShaped):
            path_tdsta(compile_xpath("//a[b]"))


class TestDeterminism:
    @pytest.mark.parametrize("query", PATH_QUERIES)
    def test_result_is_deterministic_and_complete(self, query):
        sta = path_tdsta(compile_xpath(query))
        assert sta.is_topdown_deterministic()
        assert sta.is_topdown_complete()

    def test_desc_a_desc_b_minimizes_to_example_21(self):
        """The paper's Example 2.1 automaton, recovered automatically."""
        sta = compile_tdsta("//a//b")
        assert len(sta.states) == 2  # exactly q0, q1 of Example 2.1

    def test_minimization_preserves_selection(self):
        sta = path_tdsta(compile_xpath("//a/b//c"))
        mini = minimize_tdsta(sta)
        tree = BinaryTree.from_spec(("r", ("a", ("b", ("d", "c")), "c")))
        assert mini.selected_nodes(tree) == sta.selected_nodes(tree)


class TestEvaluation:
    @pytest.mark.parametrize("query", PATH_QUERIES)
    def test_matches_reference_on_fixed_tree(self, query, small_tree, small_index):
        expected = evaluate_reference(small_tree, parse_xpath(query))
        _, selected = evaluate(query, small_index)
        assert selected == expected

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_random(self, tree):
        index = TreeIndex(tree)
        for query in ("//a//b", "/a/b//c", "//c"):
            expected = evaluate_reference(tree, parse_xpath(query))
            assert evaluate(query, index)[1] == expected

    def test_visits_only_relevant_nodes(self, small_index):
        """Theorem 3.1 through the public pipeline."""
        sta = compile_tdsta("//a//b")
        relevant = topdown_relevant(sta, small_index.tree)
        stats = EvalStats()
        evaluate("//a//b", small_index, stats)
        assert stats.visited == len(relevant)

    def test_paper_path_queries_on_xmark(self, xmark_index):
        for qid in ("Q01", "Q05", "Q11"):
            query = QUERIES[qid]
            expected = evaluate_reference(xmark_index.tree, parse_xpath(query))
            assert evaluate(query, xmark_index)[1] == expected


class TestEngineIntegration:
    XML = "<r><a><x/><b/><c><b/></c></a><b/></r>"

    def test_strategy_available(self):
        engine = Engine(self.XML, strategy="deterministic")
        assert engine.select("//a//b") == [3, 5]

    def test_fallback_for_predicates(self):
        engine = Engine(self.XML, strategy="deterministic")
        assert engine.select("//a[c]//b") == [3, 5]

    def test_matches_optimized_everywhere(self, xmark_index):
        det = Engine(xmark_index.tree, strategy="deterministic")
        opt = Engine(xmark_index.tree, strategy="optimized")
        for qid, query in QUERIES.items():
            assert det.select(query) == opt.select(query), qid


class TestBottomUpFilter:
    """//target[.//witness] via the 3-state BDSTA (Example A.1 family)."""

    def test_query_recognition(self):
        from repro.automata.pathdet import match_filter_query

        assert match_filter_query(parse_xpath("//a[.//b]")) == ("a", "b")
        assert match_filter_query(parse_xpath("//a[b]")) is None
        assert match_filter_query(parse_xpath("//a[.//b]//c")) is None
        assert match_filter_query(parse_xpath("//a[.//b and c]")) is None
        assert match_filter_query(parse_xpath("//*[.//b]")) is None

    def test_bdsta_is_deterministic_and_minimal(self):
        from repro.automata.minimize import minimize_bdsta
        from repro.automata.pathdet import filter_bdsta

        sta = filter_bdsta("a", "b")
        assert sta.is_bottomup_deterministic()
        assert sta.is_bottomup_complete()
        # Three states are necessary (see examples.sta_a_with_b_below's
        # docstring discussion): minimization cannot shrink it.
        assert len(minimize_bdsta(sta).states) == 3

    def test_no_equivalent_tdsta_shape(self):
        """The paper's claim that //a[.//b] is not top-down determinizable
        shows up as: the compiled ASTA is not path-shaped."""
        from repro.automata.pathdet import is_path_shaped

        assert not is_path_shaped(compile_xpath("//a[.//b]"))

    def test_rejects_other_queries(self):
        from repro.engine.deterministic import evaluate_bottomup_filter

        with pytest.raises(NotPathShaped):
            evaluate_bottomup_filter("//a//b", TreeIndex(BinaryTree.from_spec("a")))

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, tree):
        from repro.engine.deterministic import evaluate_bottomup_filter

        index = TreeIndex(tree)
        for query in ("//a[.//b]", "//b[.//c]", "//a[.//a]"):
            expected = evaluate_reference(index.tree, parse_xpath(query))
            assert evaluate_bottomup_filter(query, index)[1] == expected

    def test_skips_witness_free_regions(self, xmark_index):
        from repro.counters import EvalStats
        from repro.engine.deterministic import evaluate_bottomup_filter

        stats = EvalStats()
        evaluate_bottomup_filter("//listitem[.//keyword]", xmark_index, stats)
        assert stats.visited < xmark_index.tree.n


class TestWildcardInventory:
    """Regression: '*' on encoded documents must compile against the
    element-label inventory, both through the strategy and through the
    module-level evaluate() (the TDSTA cache is keyed by inventory)."""

    XML = '<r><a id="v">text here</a><b/></r>'

    @pytest.fixture()
    def encoded_index(self):
        from repro.tree.parser import parse_xml

        tree = BinaryTree.from_document(
            parse_xml(self.XML), encode_attributes=True, encode_text=True
        )
        return TreeIndex(tree)

    def test_strategy_excludes_encoded_labels(self, encoded_index):
        engine = Engine(encoded_index, strategy="deterministic")
        expected = evaluate_reference(encoded_index.tree, parse_xpath("//*"))
        assert engine.select("//*") == expected
        labels = engine.labels_of(engine.select("//*"))
        assert all(not l.startswith(("@", "#")) for l in labels)

    def test_module_level_evaluate_takes_inventory(self, encoded_index):
        inventory = [
            l
            for l in encoded_index.tree.labels
            if not l.startswith(("@", "#"))
        ]
        _, with_inventory = evaluate(
            "//*", encoded_index, wildcard_labels=inventory
        )
        expected = evaluate_reference(encoded_index.tree, parse_xpath("//*"))
        assert with_inventory == expected
        # Without the inventory the wildcard matches every label: the
        # two cache entries must not alias.
        _, without = evaluate("//*", encoded_index)
        assert without == list(range(encoded_index.tree.n))
