"""Differential fuzzing: every registered strategy vs the naive oracle.

A fixed-seed grammar fuzzer (:mod:`strategies`) generates random
documents and random Core-XPath queries over the full supported
fragment -- all axes (backward ones resolve through the mixed pipeline),
nested ``and``/``or``/``not`` predicates, wildcard and ``node()``/
``text()`` tests, attribute encoding.  Each case is checked against the
set-based reference semantics (:func:`evaluate_reference`, the oracle
the naive engine itself is validated against) for *every* strategy in
the registry, so a new plugin is fuzzed for free.

The corpus is a pure function of the seeds below: CI replays the exact
same few hundred cases on every run.
"""

from __future__ import annotations

import pytest

from repro.engine import registry
from repro.engine.api import Engine
from repro.engine.plan import CompiledQueryCache
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference
from strategies import fuzz_corpus, window_fuzz_corpus

SEED = 0xC0FFEE

# Five corpora: plain element documents over forward queries, the full
# axis mix (following-sibling + backward axes), attribute/text encoded
# documents, a deeper-predicate forward corpus aimed at the
# set-at-a-time fragment, and a window-join adversarial corpus --
# sibling runs, deep chains, adjacent twin subtrees, ancestor-heavy
# predicates -- aimed at the interval-join strategy (every registered
# strategy, the vectorized one and the auto planner included, runs all
# of them).  ~400 (document, query) cases in total.
CORPORA = [
    pytest.param(
        fuzz_corpus(SEED, 8, 16),
        dict(encode_attributes=False, encode_text=False),
        id="forward",
    ),
    pytest.param(
        fuzz_corpus(SEED + 1, 6, 16, backward=True, following=True),
        dict(encode_attributes=False, encode_text=False),
        id="all-axes",
    ),
    pytest.param(
        fuzz_corpus(
            SEED + 2, 4, 12, attributes=True, text=True, following=True
        ),
        dict(encode_attributes=True, encode_text=True),
        id="encoded",
    ),
    pytest.param(
        fuzz_corpus(
            SEED + 3, 4, 14, following=True, pred_depth=3, max_steps=5
        ),
        dict(encode_attributes=False, encode_text=False),
        id="deep-predicates",
    ),
    pytest.param(
        window_fuzz_corpus(SEED + 4, 4, 14),
        dict(encode_attributes=False, encode_text=False),
        id="window-shapes",
    ),
]


def _indexes(corpus, encode):
    """One TreeIndex per corpus document (module-level work is cached by
    pytest only per-call, so keep construction cheap: docs are tiny)."""
    out = []
    for xml, queries in corpus:
        tree = BinaryTree.from_document(parse_xml(xml), **_encode_kwargs(encode))
        out.append((TreeIndex(tree), queries))
    return out


def _encode_kwargs(encode):
    return {
        "encode_attributes": encode["encode_attributes"],
        "encode_text": encode["encode_text"],
    }


@pytest.mark.parametrize("corpus,encode", CORPORA)
@pytest.mark.parametrize("strategy", registry.strategy_names())
def test_strategy_matches_oracle_on_fuzz_corpus(corpus, encode, strategy):
    cases = 0
    for index, queries in _indexes(corpus, encode):
        cache = CompiledQueryCache()
        engine = Engine(index, strategy=strategy, cache=cache)
        for query in queries:
            path = parse_xpath(query)
            expected = evaluate_reference(index.tree, path)
            got = engine.select(query)
            assert got == expected, (
                f"strategy {strategy!r} disagrees with the reference "
                f"oracle on {query!r}: {got} != {expected}"
            )
            cases += 1
    assert cases >= 48  # every corpus contributes a real batch of cases


def test_new_strategies_are_fuzzed():
    """The vectorized strategy and the auto planner are registered, so
    the parametrization above drives them against the oracle -- this
    guards against either silently dropping out of the registry."""
    names = registry.strategy_names()
    assert "vectorized" in names
    assert "window" in names
    assert "auto" in names


def test_auto_planner_consistent_across_repeats():
    """Feedback re-planning must never change *results*: executing the
    same prepared plan repeatedly (plans may switch strategy mid-stream)
    stays byte-identical to the oracle."""
    corpus = fuzz_corpus(SEED + 3, 2, 8, following=True)
    for xml, queries in corpus:
        tree = BinaryTree.from_xml(xml)
        index = TreeIndex(tree)
        engine = Engine(index, strategy="auto")
        for query in queries:
            expected = evaluate_reference(tree, parse_xpath(query))
            plan = engine.prepare(query)
            for _ in range(4):
                assert list(plan.execute().ids) == expected, query


def test_corpus_is_reproducible():
    """The fixed-seed corpus is identical across runs/platforms."""
    assert fuzz_corpus(SEED, 8, 16) == fuzz_corpus(SEED, 8, 16)
    a = fuzz_corpus(SEED + 1, 2, 4, backward=True, following=True)
    b = fuzz_corpus(SEED + 1, 2, 4, backward=True, following=True)
    assert a == b
    assert window_fuzz_corpus(SEED + 4, 2, 4) == window_fuzz_corpus(
        SEED + 4, 2, 4
    )


def test_window_corpus_exercises_its_shapes():
    """The adversarial corpus actually emits the constructs it targets:
    sibling chains, ancestor predicates, and backward steps."""
    blob = "\n".join(
        q
        for _, queries in window_fuzz_corpus(SEED + 4, 4, 14)
        for q in queries
    )
    for construct in (
        "following-sibling::",
        "ancestor::",
        "parent::",
        "[ancestor::",
        "not(ancestor::",
    ):
        assert construct in blob, f"fuzzer never produced {construct!r}"


def test_corpus_exercises_the_grammar():
    """The grammar actually produces the constructs it claims to cover."""
    blob = "\n".join(
        q
        for corpus in (
            fuzz_corpus(SEED, 8, 16),
            fuzz_corpus(SEED + 1, 6, 16, backward=True, following=True),
            fuzz_corpus(
                SEED + 2, 4, 12, attributes=True, text=True, following=True
            ),
        )
        for _, queries in corpus
        for q in queries
    )
    for construct in (
        "//",
        "[",
        "not(",
        " and ",
        " or ",
        "*",
        "node()",
        "following-sibling::",
        "ancestor::",
        "/..",
        "@",
    ):
        assert construct in blob, f"fuzzer never produced {construct!r}"
