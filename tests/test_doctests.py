"""Doctests embedded in public docstrings must stay truthful."""

import doctest

import pytest

import repro.engine.api
import repro.tree.binary
import repro.tree.parser
import repro.xpath.compiler
import repro.xpath.parser

MODULES = [
    repro.engine.api,
    repro.tree.binary,
    repro.tree.parser,
    repro.xpath.compiler,
    repro.xpath.parser,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0, f"{module.__name__} has no doctests"
