"""Dot export of automata."""

from repro.automata.dot import asta_to_dot, sta_to_dot
from repro.automata.examples import sta_desc_a_desc_b
from repro.xpath.compiler import compile_xpath


class TestDot:
    def test_sta_dot_contains_states_and_edges(self):
        dot = sta_to_dot(sta_desc_a_desc_b())
        assert dot.startswith("digraph")
        assert '"q0"' in dot and '"q1"' in dot
        assert "doublecircle" in dot  # top state
        assert "->" in dot

    def test_asta_dot_contains_formulas(self):
        dot = asta_to_dot(compile_xpath("//a//b[c]"))
        assert "⇒" in dot  # selecting transition rendered
        assert "↓1" in dot
        assert "shape=box" in dot

    def test_quoting_is_safe(self):
        dot = sta_to_dot(sta_desc_a_desc_b())
        # balanced braces, no raw quotes outside attributes
        assert dot.count("{") == dot.count("}")
