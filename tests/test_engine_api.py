"""Public Engine API."""

import pytest

from repro import Engine, evaluate, parse_xml
from repro.tree.binary import BinaryTree

XML = "<r><a><x/><b/><c><b/></c></a><b/></r>"


class TestConstruction:
    def test_from_string(self):
        assert Engine(XML).select("//a//b") == [3, 5]

    def test_from_document(self):
        assert Engine(parse_xml(XML)).select("//a//b") == [3, 5]

    def test_from_binary_tree(self):
        tree = BinaryTree.from_xml(XML)
        assert Engine(tree).select("//a//b") == [3, 5]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Engine(XML, strategy="warp")

    def test_strategy_switch(self):
        engine = Engine(XML, strategy="naive")
        first = engine.select("//b")
        engine.set_strategy("hybrid")
        assert engine.select("//b") == first


class TestQuerying:
    def test_run_returns_acceptance(self):
        engine = Engine(XML)
        accepted, ids = engine.run("//a//b")
        assert accepted and ids == [3, 5]
        accepted, ids = engine.run("//zz")
        assert not accepted and ids == []

    def test_count(self):
        assert Engine(XML).count("//b") == 3

    def test_labels_of(self):
        engine = Engine(XML)
        assert engine.labels_of(engine.select("/r/*")) == ["a", "b"]

    def test_compiled_query_cache(self):
        engine = Engine(XML)
        a1 = engine.compile("//a//b")
        a2 = engine.compile("//a//b")
        assert a1 is a2

    def test_last_stats_populated(self):
        engine = Engine(XML)
        engine.select("//a//b")
        assert engine.last_stats is not None
        assert engine.last_stats.selected == 2
        assert engine.last_stats.visited >= 2

    def test_parsed_path_accepted(self):
        from repro.xpath.parser import parse_xpath

        engine = Engine(XML)
        assert engine.select(parse_xpath("//a//b")) == [3, 5]


class TestExplain:
    def test_explain_shows_automaton(self):
        text = Engine(XML).explain("//a//b")
        assert "ASTA" in text
        assert "⇒" in text

    def test_explain_shows_hybrid_plan(self):
        text = Engine(XML).explain("//a//b")
        assert "hybrid plan" in text
        assert "pivot" in text

    def test_explain_non_chain_has_no_plan(self):
        text = Engine(XML).explain("/r/a[b]")
        assert "hybrid plan" not in text


class TestModuleLevelHelper:
    def test_evaluate_one_shot(self):
        assert evaluate(XML, "//a//b") == [3, 5]
        assert evaluate(XML, "//a//b", strategy="naive") == [3, 5]


class TestExtract:
    def test_extract_subtrees(self):
        engine = Engine("<r><a><b/><c/></a><a/></r>")
        assert engine.extract("//a") == ["<a><b/><c/></a>", "<a/>"]

    def test_extract_preserves_child_order(self):
        engine = Engine("<r><a><x/><y/><z/></a></r>")
        assert engine.extract("//a") == ["<a><x/><y/><z/></a>"]

    def test_extract_empty_result(self):
        engine = Engine("<r/>")
        assert engine.extract("//zz") == []


class TestUnusualLabels:
    def test_label_colliding_with_atom_sentinel(self):
        # '†other' is the internal fresh-witness name; documents using it
        # literally must still evaluate correctly.
        xml = "<r><a>x</a><†other/><a><†other/></a></r>".replace("x", "")
        # The parser requires NameStart characters; build via the API.
        from repro.tree.document import XMLDocument, XMLNode

        root = XMLNode("r")
        root.new_child("a")
        root.new_child("†other")
        inner = root.new_child("a")
        inner.new_child("†other")
        engine = Engine(XMLDocument(root))
        from repro.tree.binary import BinaryTree
        from repro.xpath.parser import parse_xpath
        from repro.xpath.reference import evaluate_reference

        tree = engine.tree
        for q in ("//a", "//a/*"):
            expected = evaluate_reference(tree, parse_xpath(q))
            assert engine.select(q) == expected, q
