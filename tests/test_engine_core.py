"""Targeted tests of the shared stack machine (repro.engine.core)."""

import pytest
from hypothesis import given, settings

from repro.counters import EvalStats
from repro.engine.core import _formula_template, _marks_down2, run_asta
from repro.asta.formula import TRUE, down, fand, fnot, for_
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees, xpath_queries

ALL_FLAGS = [
    (j, m, i) for j in (False, True) for m in (False, True) for i in (False, True)
]


class TestFlagMatrix:
    """All eight (jumping, memo, ip) combinations are semantically equal."""

    @given(binary_trees(max_depth=4, max_children=3), xpath_queries())
    @settings(max_examples=60, deadline=None)
    def test_all_combinations_agree(self, tree, query):
        index = TreeIndex(tree)
        asta = compile_xpath(parse_xpath(query))
        expected = evaluate_reference(tree, parse_xpath(query))
        for j, m, i in ALL_FLAGS:
            _, selected = run_asta(asta, index, jumping=j, memo=m, ip=i)
            assert selected == expected, (j, m, i, query)

    def test_ip_reduces_visits_never_changes_results(self, xmark_index):
        asta = compile_xpath("/site[ .//keyword ]//keyword")
        s_with, s_without = EvalStats(), EvalStats()
        r_with = run_asta(asta, xmark_index, jumping=True, memo=True, ip=True, stats=s_with)
        r_without = run_asta(asta, xmark_index, jumping=True, memo=True, ip=False, stats=s_without)
        assert r_with == r_without
        assert s_with.visited <= s_without.visited


class TestChainEarlyStop:
    def test_predicate_chain_stops_after_first_witness(self):
        # 100 b-children; the pred needs only one.
        tree = BinaryTree.from_xml("<r>" + "<b/>" * 100 + "</r>")
        index = TreeIndex(tree)
        asta = compile_xpath("/r[.//b]")
        stats = EvalStats()
        accepted, sel = run_asta(asta, index, stats=stats)
        assert accepted and sel == [0]
        assert stats.visited <= 3

    def test_selection_chain_never_stops_early(self):
        tree = BinaryTree.from_xml("<r>" + "<b/>" * 50 + "</r>")
        index = TreeIndex(tree)
        asta = compile_xpath("//b")
        stats = EvalStats()
        _, sel = run_asta(asta, index, stats=stats)
        assert len(sel) == 50
        assert stats.visited >= 50


class TestMemoBehaviour:
    def test_memo_tables_reused_within_one_run(self, xmark_index):
        asta = compile_xpath("//listitem//keyword")
        stats = EvalStats()
        run_asta(asta, xmark_index, jumping=False, memo=True, ip=False, stats=stats)
        assert stats.memo_hits > stats.memo_entries

    def test_no_memo_counts_nothing(self, xmark_index):
        asta = compile_xpath("//listitem//keyword")
        stats = EvalStats()
        run_asta(asta, xmark_index, jumping=False, memo=False, ip=False, stats=stats)
        assert stats.memo_entries == 0
        assert stats.memo_hits == 0


class TestHelperFunctions:
    def test_marks_down2_skips_false_branches(self):
        marking = lambda q: True
        f = fand(down(1, "p"), down(2, "q"))
        # left branch false => whole conjunction false => nothing at stake
        assert _marks_down2(f, frozenset(), marking) == set()
        assert _marks_down2(f, frozenset({"p"}), marking) == {"q"}

    def test_marks_down2_ignores_negated(self):
        marking = lambda q: True
        f = fnot(down(2, "q"))
        assert _marks_down2(f, frozenset(), marking) == set()

    def test_marks_down2_filters_non_marking(self):
        marking = lambda q: q == "m"
        f = for_(down(2, "m"), down(2, "x"))
        assert _marks_down2(f, frozenset(), marking) == {"m"}

    def test_formula_template_collects_sources(self):
        f = fand(down(1, "p"), for_(down(2, "q"), down(2, "r")))
        ok, sources = _formula_template(
            f, frozenset({"p"}), frozenset({"q", "r"})
        )
        assert ok
        assert set(sources) == {(1, "p"), (2, "q"), (2, "r")}

    def test_formula_template_or_single_branch(self):
        f = for_(down(1, "p"), down(1, "q"))
        ok, sources = _formula_template(f, frozenset({"q"}), frozenset())
        assert ok and sources == [(1, "q")]

    def test_formula_template_negation_contributes_nothing(self):
        f = fnot(down(1, "p"))
        ok, sources = _formula_template(f, frozenset(), frozenset())
        assert ok and sources == []
