"""Cross-engine equivalence: every engine == the set-based reference.

This is the library's central correctness property: naive, jumping,
memoized, optimized, hybrid and the step-wise baseline must all return
exactly the reference answer, on the paper's fifteen queries over XMark
documents and on hypothesis-random documents x random fragment queries.

The registry conformance suite at the bottom extends the property to
*every registered strategy*: it parametrizes over
``registry.strategy_names()`` at collection time, so a plugin strategy
registered before test collection is checked against the ``naive``
oracle and the reference semantics for free.
"""

import pytest
from hypothesis import given, settings

from repro.baselines.stepwise import stepwise_evaluate
from repro.counters import EvalStats
from repro.engine import optimized, registry
from repro.engine.api import Engine
from repro.engine.hybrid import hybrid_evaluate
from repro.index.jumping import TreeIndex
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees, xpath_queries

# The Figure 4 series: every ASTA-consuming strategy in the registry.
ENGINES = {
    strategy.name: strategy.evaluator
    for strategy in registry.all_strategies()
    if getattr(strategy, "evaluator", None) is not None
}


class TestPaperQueriesOnXMark:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_all_engines_match_reference(self, qid, xmark_index):
        query = QUERIES[qid]
        tree = xmark_index.tree
        expected = evaluate_reference(tree, parse_xpath(query))
        asta = compile_xpath(query)
        for name, evaluate in ENGINES.items():
            accepted, selected = evaluate(asta, xmark_index)
            assert selected == expected, f"{name} disagrees on {qid}"
            assert accepted == bool(expected) or qid == "Q10"
        assert stepwise_evaluate(query, xmark_index) == expected
        assert hybrid_evaluate(query, xmark_index)[1] == expected

    def test_acceptance_flag_consistent_across_engines(self, xmark_index):
        for qid, query in QUERIES.items():
            asta = compile_xpath(query)
            flags = {
                name: evaluate(asta, xmark_index)[0]
                for name, evaluate in ENGINES.items()
            }
            assert len(set(flags.values())) == 1, f"{qid}: {flags}"


class TestJumpingNeverVisitsMore:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_visit_counts_ordered(self, qid, xmark_index):
        asta = compile_xpath(QUERIES[qid])
        counts = {}
        for name, evaluate in ENGINES.items():
            stats = EvalStats()
            evaluate(asta, xmark_index, stats)
            counts[name] = stats.visited
        assert counts["jumping"] <= counts["naive"]
        assert counts["optimized"] <= counts["memo"]
        # memoization does not change the traversal
        assert counts["memo"] == counts["naive"]


class TestRandomDocumentsRandomQueries:
    @given(binary_trees(max_depth=4, max_children=4), xpath_queries())
    @settings(max_examples=120, deadline=None)
    def test_engines_match_reference(self, tree, query):
        path = parse_xpath(query)
        expected = evaluate_reference(tree, path)
        index = TreeIndex(tree)
        asta = compile_xpath(path)
        for name, evaluate in ENGINES.items():
            _, selected = evaluate(asta, index)
            assert selected == expected, (
                f"{name} disagrees on {query}: {selected} != {expected}"
            )
        assert stepwise_evaluate(path, index) == expected
        assert hybrid_evaluate(path, index)[1] == expected

    @given(binary_trees(max_depth=3, max_children=3), xpath_queries(pred_depth=2))
    @settings(max_examples=80, deadline=None)
    def test_deep_predicates_match(self, tree, query):
        path = parse_xpath(query)
        expected = evaluate_reference(tree, path)
        index = TreeIndex(tree)
        asta = compile_xpath(path)
        _, selected = optimized.evaluate(asta, index)
        assert selected == expected


class TestDeepAndWideDocuments:
    def test_wide_sibling_chain_no_recursion_limit(self):
        from repro.tree.binary import BinaryTree

        tree = BinaryTree.from_xml("<r>" + "<a><b/></a>" * 20_000 + "</r>")
        index = TreeIndex(tree)
        asta = compile_xpath("//a/b")
        for name, evaluate in ENGINES.items():
            _, selected = evaluate(asta, index)
            assert len(selected) == 20_000, name

    def test_deep_nesting_no_recursion_limit(self):
        from repro.tree.binary import BinaryTree

        depth = 5_000
        xml = "<a>" * depth + "</a>" * depth
        tree = BinaryTree.from_xml(xml)
        index = TreeIndex(tree)
        asta = compile_xpath("//a[a]")
        _, selected = optimized.evaluate(asta, index)
        assert len(selected) == depth - 1


class TestXPathMarkASeries:
    """The XPathMark A-queries (the family Q01-Q09 come from)."""

    @pytest.mark.parametrize("aid", sorted(__import__(
        "repro.xmark.queries", fromlist=["XPATHMARK_A"]).XPATHMARK_A))
    def test_engines_agree(self, aid, xmark_index):
        from repro.xmark.queries import XPATHMARK_A

        query = XPATHMARK_A[aid]
        expected = evaluate_reference(xmark_index.tree, parse_xpath(query))
        asta = compile_xpath(query)
        for name, evaluate in ENGINES.items():
            assert evaluate(asta, xmark_index)[1] == expected, (aid, name)
        assert stepwise_evaluate(query, xmark_index) == expected
        assert hybrid_evaluate(query, xmark_index)[1] == expected

    def test_a_queries_nonempty(self, xmark_index):
        from repro.engine import optimized
        from repro.xmark.queries import XPATHMARK_A

        empty = []
        for aid, q in XPATHMARK_A.items():
            _, sel = optimized.evaluate(compile_xpath(q), xmark_index)
            if not sel:
                empty.append(aid)
        assert empty == []


# ---------------------------------------------------------------------------
# Registry conformance: every registered strategy vs the naive oracle.
# ---------------------------------------------------------------------------

ALL_STRATEGIES = registry.strategy_names()


def assert_strategy_matches_oracle(engine: Engine, strategy: str, query: str):
    """The shared conformance check: ``strategy`` == naive == reference.

    Exercised through the public API, so fallback-chain resolution is
    part of what's being conformance-tested.
    """
    expected = evaluate_reference(engine.tree, parse_xpath(query))
    oracle = list(engine.prepare(query, strategy="naive").execute().ids)
    result = engine.prepare(query, strategy=strategy).execute()
    assert oracle == expected, f"naive oracle disagrees with reference on {query}"
    assert list(result.ids) == expected, (
        f"{strategy} disagrees on {query}: {list(result.ids)} != {expected}"
    )
    if expected:
        # Nonempty selection must be accepted; an empty selection may
        # still be accepted (the Q10 quirk: acceptance is existential).
        assert result.accepted, f"{strategy} rejected {query} with results"


class TestRegistryConformance:
    """Every registered strategy, through Engine.prepare, on the corpus."""

    @pytest.fixture(scope="class")
    def corpus_engine(self, xmark_index):
        return Engine(xmark_index)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_paper_corpus(self, corpus_engine, strategy, qid):
        assert_strategy_matches_oracle(corpus_engine, strategy, QUERIES[qid])

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_backward_axes_resolve_and_agree(self, corpus_engine, strategy):
        for query in ("//bidder/parent::open_auction", "//emph/ancestor::listitem"):
            assert_strategy_matches_oracle(corpus_engine, strategy, query)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @given(tree=binary_trees(max_depth=3, max_children=3), query=xpath_queries())
    @settings(max_examples=25, deadline=None)
    def test_random_documents(self, strategy, tree, query):
        assert_strategy_matches_oracle(Engine(tree), strategy, query)
