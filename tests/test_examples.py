"""Smoke tests: every example script must run cleanly."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def run_example(path: Path, argv):
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        with redirect_stdout(out):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return out.getvalue()


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


def test_quickstart_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "quickstart.py"), []
    )
    assert "every registered strategy agrees" in out
    assert "prepared queries" in out
    assert "workspace" in out
    assert "//book" in out


def test_xmark_analytics_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "xmark_analytics.py"), ["0.05"]
    )
    assert "Q15" in out
    assert "ad-hoc analytics" in out


def test_hybrid_selectivity_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "hybrid_selectivity.py"), ["0.01"]
    )
    assert "pivot" in out
    assert " D " in out or "D " in out


def test_automata_explorer_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "automata_explorer.py"), []
    )
    assert "jump shape" in out
    assert "relevant nodes" in out


def test_access_control_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "access_control.py"), []
    )
    assert "may access" in out
    assert "auditor" in out


def test_parallel_batch_runs():
    out = run_example(
        next(p for p in EXAMPLES if p.name == "parallel_batch.py"), ["0.05"]
    )
    assert "identical to serial: True" in out
    assert "shard 0" in out
    assert "aggregated shard counters" in out
