"""Shape assertions for the paper's experimental claims (Section 5).

These tests pin the *relational* findings of the evaluation -- who wins,
and the special cases the paper calls out -- on a small XMark instance.
Counts are used instead of wall-clock times wherever possible to keep the
suite robust; EXPERIMENTS.md records the timing tables.
"""

import pytest

from repro.counters import EvalStats
from repro.engine import jumping, memo, naive, optimized
from repro.engine.hybrid import hybrid_evaluate
from repro.index.jumping import TreeIndex
from repro.xmark.configs import make_config_tree
from repro.xmark.queries import HYBRID_QUERY, QUERIES
from repro.xpath.compiler import compile_xpath


def run(engine, qid, index):
    stats = EvalStats()
    engine.evaluate(compile_xpath(QUERIES[qid]), index, stats)
    return stats


class TestFigure3Claims:
    def test_q01_touches_two_nodes(self, xmark_index):
        """Paper: Q01 selects 1 node and visits 2 with jumping."""
        stats = run(optimized, "Q01", xmark_index)
        assert stats.selected == 1
        assert stats.visited == 2

    def test_q10_one_witness_predicate(self, xmark_index):
        """Paper: Q10 selects 1 (the root) and visits 2."""
        stats = run(optimized, "Q10", xmark_index)
        assert stats.selected == 1
        assert stats.visited == 2

    @pytest.mark.parametrize("qid", ["Q11", "Q12"])
    def test_keyword_accumulation_touches_only_keywords(self, qid, xmark_index):
        """Paper: for Q11/Q12 visited = selected + 1 (ratio 99.9%)."""
        stats = run(optimized, qid, xmark_index)
        assert stats.visited == stats.selected + 1

    @pytest.mark.parametrize("qid", ["Q13", "Q14", "Q15"])
    def test_predicate_overhead_is_small(self, qid, xmark_index):
        """Paper: Q13-Q15 touch only a handful of extra nodes."""
        stats = run(optimized, qid, xmark_index)
        assert stats.visited <= stats.selected * 1.2 + 50

    def test_full_traversal_queries_visit_everything_naive(self, xmark_index):
        """Paper: a top-level '//' forces the full document without
        jumping."""
        n = xmark_index.tree.n
        for qid in ("Q05", "Q08", "Q11"):
            stats = run(naive, qid, xmark_index)
            assert stats.visited == n

    def test_memo_tables_stay_small(self, xmark_index):
        """Paper line (4): tens of entries, not thousands."""
        for qid in QUERIES:
            stats = run(optimized, qid, xmark_index)
            assert stats.memo_entries < 600, qid

    def test_ratio_line5_shape(self, xmark_index):
        """Selected/visited >= 10% for the realistic queries (except Q08,
        exactly as the paper reports)."""
        for qid in ("Q02", "Q03", "Q04", "Q05", "Q06", "Q07", "Q09"):
            stats = run(optimized, qid, xmark_index)
            assert stats.ratio_selected_visited() > 10.0, qid


class TestFigure4Claims:
    def test_jumping_cuts_visits_by_10x_on_slash_slash_queries(self, xmark_index):
        """Paper: jumping alone improves 10-100x on // queries (we assert
        the visit-count proxy)."""
        for qid in ("Q05", "Q10", "Q11"):
            s_naive = run(naive, qid, xmark_index)
            s_jump = run(jumping, qid, xmark_index)
            assert s_jump.visited * 2 < s_naive.visited, qid
        s_naive = run(naive, "Q10", xmark_index)
        s_jump = run(jumping, "Q10", xmark_index)
        assert s_jump.visited * 100 < s_naive.visited

    def test_memo_amortizes_transition_scans(self, xmark_index):
        """After warm-up, look-ups dominate: hits >> entries."""
        stats = run(memo, "Q05", xmark_index)
        assert stats.memo_hits > 20 * stats.memo_entries

    def test_opt_visits_min_of_both(self, xmark_index):
        for qid in QUERIES:
            s_opt = run(optimized, qid, xmark_index)
            s_jump = run(jumping, qid, xmark_index)
            s_memo = run(memo, qid, xmark_index)
            assert s_opt.visited <= min(s_jump.visited, s_memo.visited), qid


class TestFigure5Claims:
    @pytest.mark.parametrize("name,best_case", [("A", True), ("B", True), ("C", False)])
    def test_hybrid_visit_regimes(self, name, best_case):
        index = TreeIndex(make_config_tree(name, fraction=0.05))
        s_h, s_r = EvalStats(), EvalStats()
        hybrid_evaluate(HYBRID_QUERY, index, s_h)
        optimized.evaluate(compile_xpath(HYBRID_QUERY), index, s_r)
        if best_case:
            # A/B: hybrid visits orders of magnitude fewer nodes.
            assert s_h.visited * 100 < s_r.visited
        else:
            # C: hybrid degenerates to roughly the regular behaviour.
            assert s_h.visited > s_r.visited / 2

    def test_config_b_runs_from_emph(self):
        """Paper: in B the hybrid does a pure bottom-up run from emph."""
        from repro.engine.hybrid import plan_pivot
        from repro.xpath.parser import parse_xpath

        index = TreeIndex(make_config_tree("B", fraction=0.05))
        assert plan_pivot(parse_xpath(HYBRID_QUERY), index) == 2  # emph

    def test_config_a_runs_from_keyword(self):
        from repro.engine.hybrid import plan_pivot
        from repro.xpath.parser import parse_xpath

        index = TreeIndex(make_config_tree("A", fraction=0.05))
        assert plan_pivot(parse_xpath(HYBRID_QUERY), index) == 1  # keyword


class TestFigure8Claims:
    def test_automata_engine_agrees_with_stepwise_everywhere(self, xmark_index):
        from repro.baselines.stepwise import stepwise_evaluate

        for qid, q in QUERIES.items():
            _, sel = optimized.evaluate(compile_xpath(q), xmark_index)
            assert stepwise_evaluate(q, xmark_index) == sel, qid
