"""Failure injection: every public entry point must fail loudly and
precisely, never silently."""

import pytest

from repro import Engine
from repro.baselines.stepwise import stepwise_evaluate
from repro.engine.hybrid import hybrid_evaluate
from repro.engine.mixed import mixed_evaluate
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.parser import XMLSyntaxError, parse_xml
from repro.xpath.compiler import XPathCompileError
from repro.xpath.parser import XPathSyntaxError

TREE = BinaryTree.from_xml("<r><a/></r>")
INDEX = TreeIndex(TREE)


class TestQueryErrors:
    def test_syntax_error_propagates(self):
        with pytest.raises(XPathSyntaxError):
            Engine(TREE).select("//a[")

    def test_relative_query_rejected_by_engine(self):
        with pytest.raises(XPathCompileError):
            Engine(TREE).select("a/b")

    def test_relative_query_rejected_by_stepwise(self):
        with pytest.raises(ValueError):
            stepwise_evaluate("a/b", INDEX)

    def test_relative_query_rejected_by_mixed(self):
        with pytest.raises(ValueError):
            mixed_evaluate("a/..", INDEX)

    def test_attribute_start_rejected(self):
        with pytest.raises(XPathCompileError):
            Engine(TREE).select("/@id")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            Engine(TREE, strategy="quantum")


class TestDocumentErrors:
    def test_malformed_xml_propagates(self):
        with pytest.raises(XMLSyntaxError):
            Engine("<a><b></a>")

    def test_empty_document_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("   ")


class TestDegenerateDocuments:
    def test_single_node_document(self):
        engine = Engine("<only/>")
        assert engine.select("/only") == [0]
        assert engine.select("//only") == [0]
        assert engine.select("//only/only") == []
        assert engine.select("//only/..") == []

    def test_query_selecting_nothing_everywhere(self):
        engine = Engine("<r><a/><b/></r>")
        for strategy in ("naive", "jumping", "memo", "optimized", "hybrid",
                         "deterministic"):
            engine.set_strategy(strategy)
            accepted, ids = engine.run("//zz")
            assert not accepted and ids == []

    def test_root_only_queries(self):
        engine = Engine("<r><a/></r>")
        assert engine.select("/r") == [0]
        assert engine.select("/r[a]") == [0]
        assert engine.select("/r[not(a)]") == []


class TestHybridDegenerate:
    def test_hybrid_label_absent_from_document(self):
        # the pivot label does not occur: count 0, empty start set.
        accepted, ids = hybrid_evaluate("//zz//a", INDEX)
        assert not accepted and ids == []

    def test_hybrid_single_step(self):
        accepted, ids = hybrid_evaluate("//a", INDEX)
        assert accepted and ids == [1]
