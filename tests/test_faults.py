"""Chaos suite: fault injection, corruption recall, self-healing serving.

Every test here is deterministic: corruption offsets, probabilistic
firing and retry jitter all come from fixed seeds, so a failure replays
identically under ``pytest -x``.
"""

import errno
import io
import json
import os
import random
import shutil
import socket
import threading
import time

import pytest

from repro import faults
from repro.engine.api import Engine
from repro.engine.workspace import Workspace
from repro.faults import (
    FaultPlan,
    InjectedFault,
    InjectedWorkerError,
    corrupt_bundle,
    corrupt_file,
)
from repro.serve import DaemonThread, QueryDaemon, ServeClient, ServeError
from repro.store import (
    DocumentStore,
    StoreCorruptionError,
    StoreError,
    open_document,
    verify_document,
)
from repro.store.format import (
    ARRAY_DTYPES,
    HEADER_FILE,
    OPTIONAL_ARRAY_DTYPES,
    array_path,
)

#: Every array a freshly written bundle contains -- the required set
#: plus the optional columns (``post``) that save_document always emits.
ALL_ARRAYS = {**ARRAY_DTYPES, **OPTIONAL_ARRAY_DTYPES}

XML = "<r><a><b/></a><a/><c><b/></c></r>"
#: //a/b on XML above (node ids are stable: document order).
AB_IDS = [2]


def build_bundle(path, xml=XML):
    ws = Workspace()
    ws.add("doc", xml)
    saved = ws.save(str(path))
    ws.close()
    return saved["doc"]


# -- the framework itself -----------------------------------------------------


class TestFaultFramework:
    def test_check_is_noop_without_plan(self):
        faults.check("store.load_array", array="left", path="/nope")

    def test_inject_scoped_by_match(self):
        with faults.inject(
            "serve.evaluate", "exception", match={"document": "bad"}
        ) as plan:
            faults.check("serve.evaluate", document="good", strategy="auto")
            with pytest.raises(InjectedWorkerError):
                faults.check("serve.evaluate", document="bad", strategy="auto")
        assert plan.fired() == 1
        assert plan.checks["serve.evaluate"] == 2

    def test_unless_spares_the_fallback_path(self):
        with faults.inject(
            "serve.evaluate", "exception", unless={"strategy": "naive"}
        ):
            with pytest.raises(InjectedWorkerError):
                faults.check("serve.evaluate", document="d", strategy="auto")
            faults.check("serve.evaluate", document="d", strategy="naive")

    def test_after_and_times_gate_firing(self):
        plan = FaultPlan()
        plan.add("s", "io_error", after=2, times=1)
        with faults.active(plan):
            faults.check("s")
            faults.check("s")
            with pytest.raises(InjectedFault):
                faults.check("s")
            faults.check("s")  # times=1 budget spent
        assert plan.fired("s") == 1

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.add("s", "io_error", probability=0.5)
            pattern = []
            with faults.active(plan):
                for _ in range(20):
                    try:
                        faults.check("s")
                        pattern.append(0)
                    except InjectedFault:
                        pattern.append(1)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert 0 < sum(firing_pattern(7)) < 20

    def test_io_error_carries_errno(self):
        with faults.inject("s", "io_error", errno_=errno.ENOSPC):
            with pytest.raises(OSError) as exc:
                faults.check("s")
        assert exc.value.errno == errno.ENOSPC

    def test_no_nested_plans(self):
        with faults.inject("s", "io_error", times=0):
            with pytest.raises(RuntimeError, match="already active"):
                with faults.inject("t", "io_error"):
                    pass

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan().add("s", "segfault")

    def test_corrupt_file_is_seed_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(bytes(range(256)))
        b.write_bytes(bytes(range(256)))
        ra = corrupt_file(str(a), mode="bit_flip", seed=5)
        rb = corrupt_file(str(b), mode="bit_flip", seed=5)
        assert (ra["offset"], ra["bit"]) == (rb["offset"], rb["bit"])
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != bytes(range(256))

    def test_truncate_shrinks_but_keeps_the_file(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x" * 100)
        report = corrupt_file(str(f), mode="truncate", seed=0)
        assert 0 < report["to"] < 100
        assert f.stat().st_size == report["to"]


# -- corruption recall over the whole array set -------------------------------


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    root = tmp_path_factory.mktemp("pristine")
    return build_bundle(root)


@pytest.fixture()
def bundle(pristine, tmp_path):
    """A throwaway copy of the pristine bundle, safe to damage."""
    dest = str(tmp_path / "doc")
    shutil.copytree(pristine, dest)
    return dest


class TestCorruptionRecall:
    """Deep verification catches every single-array corruption: 16
    arrays (optional ``post`` included) x {truncate, bit_flip} = 32
    damage cases, 100% recall."""

    @pytest.mark.parametrize("array", sorted(ALL_ARRAYS))
    @pytest.mark.parametrize("mode", ["truncate", "bit_flip"])
    def test_deep_verify_catches(self, bundle, array, mode):
        verify_document(bundle, deep=True)  # pristine copy passes
        corrupt_bundle(bundle, array, mode=mode, seed=11)
        with pytest.raises(StoreCorruptionError) as exc:
            verify_document(bundle, deep=True)
        detail = exc.value.to_dict()
        assert detail["reason"]
        assert detail["path"]

    def test_truncation_caught_at_open(self, bundle):
        corrupt_bundle(bundle, "left", mode="truncate", seed=0)
        with pytest.raises(StoreCorruptionError) as exc:
            open_document(bundle)
        assert exc.value.array == "left"
        assert exc.value.expected is not None
        assert exc.value.actual is not None
        assert exc.value.actual < exc.value.expected

    def test_data_bit_flip_passes_fast_only_deep_catches(self, bundle):
        # Flip a data bit at the very end of the file: sizes and the
        # .npy header stay intact, so the cheap serving-path checks
        # pass -- exactly the damage class deep verification exists for.
        path = array_path(bundle, "label_of")
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)[0]
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte ^ 1]))
        report = verify_document(bundle, deep=False)
        assert report["ok"] is True and report["mode"] == "fast"
        with pytest.raises(StoreCorruptionError) as exc:
            verify_document(bundle, deep=True)
        assert exc.value.array == "label_of"
        assert exc.value.reason == "checksum mismatch"
        assert exc.value.expected != exc.value.actual

    def test_deep_report_shape(self, bundle):
        report = verify_document(bundle, deep=True)
        assert report["ok"] is True
        assert report["mode"] == "deep"
        assert report["checksums"] is True
        assert set(report["arrays"]) == set(ALL_ARRAYS)
        for entry in report["arrays"].values():
            assert entry["bytes"] > 0
            assert len(entry["crc32"]) == 8

    def test_corpus_verify_isolates_the_bad_bundle(self, pristine, tmp_path):
        root = tmp_path / "corpus"
        ws = Workspace()
        ws.add("good", XML)
        ws.add("bad", "<r><b/></r>")
        ws.save(str(root))
        ws.close()
        corrupt_bundle(str(root / "bad"), "parent", mode="bit_flip", seed=2)
        store = DocumentStore(str(root))
        reports = store.verify(deep=True)
        assert reports["good"]["ok"] is True
        assert reports["bad"]["ok"] is False
        assert reports["bad"]["error"]["array"] == "parent"
        with pytest.raises(StoreCorruptionError):
            store.verify("bad", deep=True)


class TestV1BackCompat:
    def test_v1_bundle_opens_and_deep_degrades(self, bundle):
        # Rewrite the header as a v1 manifest: no byte sizes, no digests.
        header_path = os.path.join(bundle, HEADER_FILE)
        with open(header_path) as handle:
            header = json.load(handle)
        header["version"] = 1
        header["arrays"] = {
            name: {"dtype": meta["dtype"], "shape": meta["shape"]}
            for name, meta in header["arrays"].items()
        }
        with open(header_path, "w") as handle:
            json.dump(header, handle)
        assert Engine(open_document(bundle)).select("//a/b") == AB_IDS
        report = verify_document(bundle, deep=True)
        assert report["ok"] is True
        assert report["version"] == 1
        assert report["checksums"] is False  # deep degraded to fast


# -- crash-safe builds --------------------------------------------------------


class TestBuildFaults:
    def test_enospc_mid_build_leaves_no_debris(self, tmp_path):
        with faults.inject(
            "store.write_array", "io_error", errno_=errno.ENOSPC, after=5
        ):
            with pytest.raises(OSError) as exc:
                build_bundle(tmp_path)
        assert exc.value.errno == errno.ENOSPC
        # No bundle published, no hidden staging debris left behind.
        assert os.listdir(tmp_path) == []

    def test_crash_at_publish_leaves_no_debris(self, tmp_path):
        with faults.inject("store.publish", "io_error"):
            with pytest.raises(OSError):
                build_bundle(tmp_path)
        assert os.listdir(tmp_path) == []

    def test_failed_corpus_build_keeps_earlier_bundles(self, tmp_path):
        root = tmp_path / "corpus"
        ws = Workspace()
        ws.add("a", XML)
        ws.add("b", XML)
        # 15 arrays per bundle: let bundle "a" finish, fail inside "b".
        with faults.inject(
            "store.write_array", "io_error", errno_=errno.ENOSPC, after=20
        ):
            with pytest.raises(OSError):
                ws.save(str(root))
        ws.close()
        store = DocumentStore(str(root))
        assert store.names() == ["a"]
        assert verify_document(store.path_for("a"), deep=True)["ok"] is True
        # Bundle "a" plus its corpus manifest -- no debris from "b".
        assert sorted(os.listdir(root)) == ["a", "manifest.json"]

    def test_failed_open_releases_partial_mmaps(self, bundle, monkeypatch):
        """Regression: a load that fails *after* several arrays mapped
        fine (here: ``label_ids``, the seventh) must close the handles
        it already opened instead of leaking them until gc."""
        import repro.store.store as store_mod

        original = store_mod.load_array
        mapped = []

        def recording_load(path, name, manifest, mmap):
            arr = original(path, name, manifest, mmap)
            if mmap:
                mapped.append(arr)
            return arr

        monkeypatch.setattr(store_mod, "load_array", recording_load)
        with faults.inject(
            "store.load_array", "io_error", match={"array": "label_ids"}
        ):
            with pytest.raises(OSError):
                open_document(bundle)
        assert len(mapped) == 6  # the six nav arrays mapped before the hit
        assert all(arr._mmap.closed for arr in mapped)
        # And a failed open never registers a reader.
        from repro.store import live_readers

        assert live_readers(bundle) == 0

    def test_rebuild_crash_preserves_old_corpus_entry(self, tmp_path):
        root = tmp_path / "corpus"
        bundle = build_bundle(root)
        with faults.inject(
            "store.write_array", "io_error", errno_=errno.EIO, after=5
        ):
            with pytest.raises(OSError):
                build_bundle(root, xml="<r><z/></r>")
        assert Engine(open_document(bundle)).select("//a/b") == AB_IDS
        assert verify_document(bundle, deep=True)["ok"] is True


# -- the self-healing daemon --------------------------------------------------


SERVE_QUERIES = ["//a/b", "//a", "//b", "/r/c/b"]


@pytest.fixture()
def chaos_corpus(tmp_path):
    """Two healthy documents plus serial oracle answers."""
    root = tmp_path / "corpus"
    ws = Workspace()
    ws.add("good", XML)
    ws.add("bad", "<r><a><b/><b/></a></r>")
    ws.save(str(root))
    oracle = {
        (doc, q): ws.select(q, doc)
        for doc in ("good", "bad")
        for q in SERVE_QUERIES
    }
    ws.close()
    return str(root), oracle


def make_daemon(root, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("timeout", 10.0)
    return QueryDaemon(root, **kwargs)


class TestDaemonChaos:
    def test_corrupt_bundle_skipped_at_mount(self, chaos_corpus, capsys):
        root, oracle = chaos_corpus
        corrupt_bundle(os.path.join(root, "bad"), "left", mode="truncate")
        with DaemonThread(make_daemon(root)) as handle:
            with ServeClient(port=handle.port, retries=0) as client:
                health = client.healthz()
                assert health["ok"] is False
                assert health["status"] == "degraded"
                assert health["documents"] == ["good"]
                assert "bad" in health["skipped"]
                # The healthy document keeps answering, oracle-identical.
                for q in SERVE_QUERIES:
                    payload = client.query(q, document="good")
                    assert payload["ids"] == oracle[("good", q)]
                stats = client.stats()
                assert stats["health"]["status"] == "degraded"
                assert "bad" in stats["health"]["skipped"]
        assert "skipping corrupt bundle" in capsys.readouterr().err

    def test_all_bundles_corrupt_fails_startup(self, chaos_corpus):
        root, _ = chaos_corpus
        for name in ("good", "bad"):
            corrupt_bundle(os.path.join(root, name), "left", mode="truncate")
        with pytest.raises(ValueError, match="no document bundles usable"):
            make_daemon(root)

    def test_quarantine_after_failure_streak(self, chaos_corpus):
        root, oracle = chaos_corpus
        plan = FaultPlan(seed=3)
        # Every evaluation of "bad" fails -- fallback included.
        plan.add("serve.evaluate", "exception", match={"document": "bad"})
        with DaemonThread(make_daemon(root, fail_threshold=2)) as handle:
            with ServeClient(port=handle.port, retries=0) as client:
                with faults.active(plan):
                    for _ in range(2):
                        with pytest.raises(ServeError) as exc:
                            client.query("//a/b", document="bad")
                        assert exc.value.status == 500
                        assert exc.value.kind == "evaluation_failed"
                    # Streak hit the threshold: structured 503 now,
                    # without touching the engine.
                    with pytest.raises(ServeError) as exc:
                        client.query("//a/b", document="bad")
                    assert exc.value.status == 503
                    assert exc.value.kind == "quarantined"
                    assert exc.value.payload["error"]["document"] == "bad"
                    assert (
                        exc.value.payload["error"]["detail"]["failures"] == 2
                    )
                    health = client.healthz()
                    assert health["status"] == "degraded"
                    assert health["quarantined"] == ["bad"]
                    # Healthy document is untouched by the quarantine.
                    for q in SERVE_QUERIES:
                        payload = client.query(q, document="good")
                        assert payload["ids"] == oracle[("good", q)]
                    stats = client.stats()
                    assert stats["errors"]["eval_failures"] == 2
                    assert stats["errors"]["quarantine_rejects"] == 1
                    assert stats["errors"]["error_rate"] > 0
                # Plan lifted + operator override: serving resumes.
                assert handle.daemon.unquarantine("bad") is True
                payload = client.query("//a/b", document="bad")
                assert payload["ids"] == oracle[("bad", "//a/b")]
                assert client.healthz()["status"] == "ok"

    def test_success_resets_failure_streak(self, chaos_corpus):
        root, oracle = chaos_corpus
        plan = FaultPlan()
        # Fails twice (primary+fallback each request), then heals.
        plan.add(
            "serve.evaluate", "exception", match={"document": "bad"}, times=2
        )
        with DaemonThread(make_daemon(root, fail_threshold=2)) as handle:
            with ServeClient(port=handle.port, retries=0) as client:
                with faults.active(plan):
                    with pytest.raises(ServeError):
                        client.query("//a/b", document="bad")
                    # One ultimately-failed request == streak 1 < 2;
                    # the next succeeds and must reset the streak.
                    payload = client.query("//a/b", document="bad")
                    assert payload["ids"] == oracle[("bad", "//a/b")]
                stats = handle.daemon.stats()
                assert stats["health"]["quarantined"] == {}
                assert stats["health"]["failure_streaks"] == {}

    def test_fallback_to_reference_path(self, chaos_corpus):
        root, oracle = chaos_corpus
        plan = FaultPlan()
        # Every strategy except the naive reference path fails.
        plan.add("serve.evaluate", "exception", unless={"strategy": "naive"})
        with DaemonThread(make_daemon(root)) as handle:
            with ServeClient(port=handle.port, retries=0) as client:
                with faults.active(plan):
                    payload = client.query("//a/b", document="good")
                assert payload["ids"] == oracle[("good", "//a/b")]
                assert payload["fallback"] == "naive"
                assert payload["strategy"] == "naive"
                stats = client.stats()
                assert stats["errors"]["fallbacks"] == 1
                assert stats["errors"]["fallback_successes"] == 1
                # A rescued request is a success: no quarantine streak.
                assert stats["health"]["failure_streaks"] == {}
                assert client.healthz()["status"] == "ok"

    def test_graceful_drain_finishes_in_flight(self, chaos_corpus):
        root, oracle = chaos_corpus
        plan = FaultPlan()
        plan.add("serve.evaluate", "slow_read", delay_s=0.4)
        handle = DaemonThread(make_daemon(root)).start()
        result = {}

        def slow_query():
            with ServeClient(port=handle.port, retries=0) as client:
                result["payload"] = client.query("//a/b", document="good")

        try:
            with faults.active(plan):
                worker = threading.Thread(target=slow_query)
                worker.start()
                time.sleep(0.15)  # let the request reach a worker thread
                t0 = time.monotonic()
                handle.stop()  # graceful drain
                worker.join(timeout=5)
            assert not worker.is_alive()
            # The in-flight request was answered, not cut off.
            assert result["payload"]["ids"] == oracle[("good", "//a/b")]
            assert time.monotonic() - t0 < 5
            assert plan.fired("serve.evaluate") == 1
        finally:
            handle.stop()

    def test_draining_daemon_rejects_new_work(self, chaos_corpus):
        root, _ = chaos_corpus
        daemon = make_daemon(root)
        daemon._draining = True  # the state stop() enters first
        import asyncio

        from repro.serve.http import HttpError, Request

        request = Request(
            method="POST",
            target="/query",
            path="/query",
            body=json.dumps({"query": "//a", "document": "good"}).encode(),
        )
        with pytest.raises(HttpError) as exc:
            asyncio.run(daemon._dispatch(request))
        assert exc.value.status == 503
        assert exc.value.kind == "shutting_down"
        # Probes still answer while draining.
        health_request = Request(
            method="GET", target="/healthz", path="/healthz"
        )
        status, payload = asyncio.run(daemon._dispatch(health_request))
        assert status == 200 and payload["status"] == "draining"
        asyncio.run(daemon.stop(drain_timeout=0.1))


# -- client retry/backoff -----------------------------------------------------


class FlakyHttpStub(threading.Thread):
    """A socket-level stub: N canned failures, then a 200 JSON answer."""

    def __init__(self, responses):
        super().__init__(daemon=True)
        self.responses = list(responses)
        self.requests_seen = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]

    def run(self):
        while self.responses:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                if not data:
                    continue
                self.requests_seen += 1
                status, body = self.responses.pop(0)
                payload = json.dumps(body).encode()
                conn.sendall(
                    f"HTTP/1.1 {status} X\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n".encode() + payload
                )

    def close(self):
        self._sock.close()


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestClientRetry:
    def test_retries_through_transient_503(self):
        stub = FlakyHttpStub(
            [
                (503, {"error": {"kind": "warming", "message": "soon"}}),
                (503, {"error": {"kind": "warming", "message": "soon"}}),
                (200, {"ok": True}),
            ]
        )
        stub.start()
        delays = []
        try:
            client = ServeClient(
                port=stub.port, retries=2, backoff_s=0.01, retry_seed=42
            )
            client._sleep = delays.append
            assert client._request("GET", "/healthz") == {"ok": True}
            client.close()
        finally:
            stub.close()
        assert stub.requests_seen == 3
        assert len(delays) == 2
        # Exact replay of the seeded jitter schedule.
        rng = random.Random(42)
        expected = [
            min(2.0, 0.01 * 2**attempt) * (0.5 + rng.random())
            for attempt in range(2)
        ]
        assert delays == pytest.approx(expected)
        assert all(d > 0 for d in delays)

    def test_retry_budget_exhausted_raises_last_error(self):
        stub = FlakyHttpStub(
            [(503, {"error": {"kind": "warming", "message": "no"}})] * 3
        )
        stub.start()
        try:
            client = ServeClient(
                port=stub.port, retries=2, backoff_s=0.001, retry_seed=0
            )
            client._sleep = lambda _s: None
            with pytest.raises(ServeError) as exc:
                client._request("GET", "/healthz")
            client.close()
        finally:
            stub.close()
        assert exc.value.status == 503
        assert stub.requests_seen == 3

    def test_connection_refused_retries_then_raises(self):
        delays = []
        client = ServeClient(
            port=free_port(), retries=2, backoff_s=0.001, retry_seed=1
        )
        client._sleep = delays.append
        with pytest.raises(ConnectionError, match="after 3 attempt"):
            client.healthz()
        assert len(delays) == 2

    def test_zero_retries_fails_fast(self):
        client = ServeClient(port=free_port(), retries=0)
        client._sleep = lambda _s: pytest.fail("no backoff with retries=0")
        with pytest.raises(ConnectionError, match="after 1 attempt"):
            client.healthz()

    def test_client_errors_never_retried(self):
        stub = FlakyHttpStub(
            [
                (400, {"error": {"kind": "bad_request", "message": "no"}}),
                (200, {"ok": True}),
            ]
        )
        stub.start()
        try:
            client = ServeClient(port=stub.port, retries=3, retry_seed=0)
            client._sleep = lambda _s: None
            with pytest.raises(ServeError) as exc:
                client._request("GET", "/healthz")
            client.close()
        finally:
            stub.close()
        assert exc.value.status == 400
        assert stub.requests_seen == 1  # 4xx is the caller's bug: no retry

    def test_backoff_is_capped_and_seed_deterministic(self):
        a = ServeClient(port=1, backoff_s=0.5, backoff_max_s=2.0, retry_seed=9)
        b = ServeClient(port=1, backoff_s=0.5, backoff_max_s=2.0, retry_seed=9)
        da = [a._backoff(i) for i in range(6)]
        db = [b._backoff(i) for i in range(6)]
        assert da == db
        assert all(d <= 2.0 * 1.5 for d in da)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient(retries=-1)


# -- the CLI round trip -------------------------------------------------------


class TestVerifyCLI:
    def cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_build_corrupt_verify_round_trip(self, tmp_path):
        xml = tmp_path / "doc.xml"
        xml.write_text(XML)
        bundle = str(tmp_path / "corpus" / "doc")
        code, _ = self.cli("store", "build", bundle, str(xml))
        assert code == 0
        code, out = self.cli("store", "verify", bundle, "--deep")
        assert code == 0
        assert "ok [deep]" in out
        corrupt_bundle(bundle, "xml_end", mode="bit_flip", seed=4)
        code, out = self.cli(
            "store", "verify", str(tmp_path / "corpus"), "--deep", "--json"
        )
        assert code == 1
        reports = json.loads(out)
        assert [r["ok"] for r in reports] == [False]
        assert reports[0]["error"]["array"] == "xml_end"

    def test_verify_corpus_reports_every_bundle(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        ws = Workspace()
        ws.add("good", XML)
        ws.add("bad", XML)
        ws.save(str(root))
        ws.close()
        corrupt_bundle(str(root / "bad"), mode="truncate", seed=1)
        code, out = self.cli("store", "verify", str(root), "--deep")
        assert code == 1
        assert "bad: CORRUPT" in out
        assert "good: ok [deep]" in out
        assert "1 of 2 bundle(s) failed" in capsys.readouterr().err

    def test_ls_skips_unreadable_bundle(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        ws = Workspace()
        ws.add("good", XML)
        ws.add("bad", XML)
        ws.save(str(root))
        ws.close()
        (root / "bad" / HEADER_FILE).write_text("{mangled")
        code, out = self.cli("store", "ls", str(root))
        assert code == 0
        assert [b["name"] for b in json.loads(out)] == ["good"]
        assert "warning: skipping" in capsys.readouterr().err
