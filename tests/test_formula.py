"""Transition formulas: constructors, closed/partial evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asta.formula import (
    FALSE,
    TRUE,
    accepts_spontaneously,
    down,
    down_states,
    eval_closed,
    fand,
    fnot,
    for_,
    formula_str,
    partial_eval,
    pending_down2,
)

STATES = ("p", "q", "r")


@st.composite
def formulas(draw, depth: int = 3):
    kind = draw(st.integers(0, 5 if depth > 0 else 2))
    if kind == 0:
        return TRUE
    if kind == 1:
        return FALSE
    if kind == 2:
        return down(draw(st.integers(1, 2)), draw(st.sampled_from(STATES)))
    if kind == 3:
        return fnot(draw(formulas(depth=depth - 1)))
    sub1 = draw(formulas(depth=depth - 1))
    sub2 = draw(formulas(depth=depth - 1))
    return fand(sub1, sub2) if kind == 4 else for_(sub1, sub2)


class TestConstructors:
    def test_units(self):
        assert fand() == TRUE
        assert for_() == FALSE
        assert fand(TRUE, TRUE) == TRUE
        assert for_(FALSE, FALSE) == FALSE

    def test_absorption(self):
        d = down(1, "q")
        assert fand(d, FALSE) == FALSE
        assert for_(d, TRUE) == TRUE
        assert fand(d, TRUE) == d
        assert for_(d, FALSE) == d

    def test_not_simplifies(self):
        assert fnot(TRUE) == FALSE
        assert fnot(FALSE) == TRUE
        d = down(2, "q")
        assert fnot(fnot(d)) == d

    def test_down_validates_side(self):
        import pytest

        with pytest.raises(ValueError):
            down(3, "q")

    def test_formula_str(self):
        f = fand(down(1, "q"), fnot(down(2, "p")))
        s = formula_str(f)
        assert "↓1 q" in s and "¬" in s and "∧" in s


class TestDownStates:
    def test_collects_both_sides(self):
        f = fand(down(1, "p"), for_(down(2, "q"), fnot(down(2, "r"))))
        assert down_states(f) == {(1, "p"), (2, "q"), (2, "r")}
        assert down_states(f, side=1) == {"p"}
        assert down_states(f, side=2) == {"q", "r"}


class TestEvaluation:
    def test_closed_evaluation(self):
        f = fand(down(1, "p"), fnot(down(2, "q")))
        assert eval_closed(f, frozenset({"p"}), frozenset())
        assert not eval_closed(f, frozenset({"p"}), frozenset({"q"}))
        assert not eval_closed(f, frozenset(), frozenset())

    def test_spontaneous_acceptance(self):
        assert accepts_spontaneously(TRUE)
        assert accepts_spontaneously(fnot(down(1, "q")))
        assert not accepts_spontaneously(down(1, "q"))
        assert not accepts_spontaneously(fand(TRUE, down(2, "q")))

    @given(formulas(), st.frozensets(st.sampled_from(STATES)), st.frozensets(st.sampled_from(STATES)))
    @settings(max_examples=100)
    def test_partial_eval_sound_wrt_closed(self, f, acc1, acc2):
        """Kleene partial evaluation never contradicts the closed truth."""
        pe = partial_eval(f, acc1)
        if pe != -1:
            assert bool(pe) == eval_closed(f, acc1, acc2)

    @given(formulas(), st.frozensets(st.sampled_from(STATES)))
    @settings(max_examples=100)
    def test_pending_down2_covers_truth_relevant_states(self, f, acc1):
        """Removing all non-pending ↓2 states cannot change the truth."""
        pending = pending_down2(f, acc1)
        all2 = down_states(f, side=2)
        for acc2 in (frozenset(), all2, pending):
            truth_full = eval_closed(f, acc1, acc2 & all2)
            truth_restricted = eval_closed(f, acc1, acc2 & pending)
            if acc2 == pending or acc2 == frozenset():
                assert truth_full == truth_restricted

    @given(formulas(), st.frozensets(st.sampled_from(STATES)), st.frozensets(st.sampled_from(STATES)))
    @settings(max_examples=120)
    def test_pending_restriction_preserves_truth(self, f, acc1, acc2):
        """Truth with acc2 equals truth with acc2 ∩ pending states."""
        pending = pending_down2(f, acc1)
        assert eval_closed(f, acc1, acc2) == eval_closed(f, acc1, acc2 & pending)
