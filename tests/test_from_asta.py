"""Alternation elimination ASTA -> STA (Section 4.1 / Example C.1)."""

import pytest
from hypothesis import given, settings

from repro.asta.formula import FALSE, TRUE, down, fand, fnot, for_
from repro.automata.from_asta import (
    AlternationError,
    asta_to_sta,
    formula_dnf,
    sta_blowup_size,
)
from repro.engine import optimized
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xpath.compiler import compile_xpath

from strategies import binary_trees


class TestDNF:
    def test_literals(self):
        assert formula_dnf(TRUE) == [(frozenset(), frozenset())]
        assert formula_dnf(FALSE) == []
        assert formula_dnf(down(1, "q")) == [(frozenset({"q"}), frozenset())]
        assert formula_dnf(down(2, "q")) == [(frozenset(), frozenset({"q"}))]

    def test_or_concatenates(self):
        f = for_(down(1, "p"), down(2, "q"))
        assert len(formula_dnf(f)) == 2

    def test_and_multiplies(self):
        f = fand(
            for_(down(1, "a1"), down(1, "a2")),
            for_(down(1, "a3"), down(1, "a4")),
        )
        assert len(formula_dnf(f)) == 4

    def test_example_c1_dnf_is_exponential(self):
        n = 6
        f = fand(
            *[
                for_(down(1, f"a{2 * i + 1}"), down(1, f"a{2 * i + 2}"))
                for i in range(n)
            ]
        )
        assert len(formula_dnf(f)) == 2**n

    def test_negation_rejected(self):
        with pytest.raises(AlternationError):
            formula_dnf(fnot(down(1, "q")))


class TestTranslationSemantics:
    QUERIES = ["//a//b", "//a//b[c]", "//a/b", "//x[a and b]", "//x[a or b]"]

    @pytest.mark.parametrize("query", QUERIES)
    def test_fixed_trees(self, query):
        asta = compile_xpath(query)
        sta = asta_to_sta(asta)
        for spec in (
            ("r", ("a", "b", ("c", "b")), "b"),
            ("x", "a", ("b", "c")),
            ("a", ("x", ("a", "b"), "c"), ("b", "c")),
            "a",
        ):
            tree = BinaryTree.from_spec(spec)
            want = optimized.evaluate(asta, TreeIndex(tree))[1]
            assert sta.selected_nodes(tree) == want, (query, spec)

    @given(binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=50, deadline=None)
    def test_random_trees_desc_desc(self, tree):
        asta = compile_xpath("//a//b")
        sta = asta_to_sta(asta)
        want = optimized.evaluate(asta, TreeIndex(tree))[1]
        assert sta.selected_nodes(tree) == want

    @given(binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=50, deadline=None)
    def test_random_trees_with_predicate(self, tree):
        asta = compile_xpath("//a[b]//c")
        sta = asta_to_sta(asta)
        want = optimized.evaluate(asta, TreeIndex(tree))[1]
        assert sta.selected_nodes(tree) == want

    def test_language_acceptance_matches(self):
        asta = compile_xpath("//a//b")
        sta = asta_to_sta(asta)
        accepting = BinaryTree.from_spec(("a", "b"))
        rejecting = BinaryTree.from_spec(("b", "a"))
        assert sta.accepts(accepting)
        assert not sta.accepts(rejecting)

    def test_negated_query_rejected(self):
        with pytest.raises(AlternationError):
            asta_to_sta(compile_xpath("//a[not(b)]"))


class TestExampleC1Blowup:
    """The paper's claim: ASTA linear, STA exponential."""

    def sizes(self, n):
        clauses = " and ".join(
            f"(a{2 * i + 1} or a{2 * i + 2})" for i in range(n)
        )
        asta = compile_xpath(f"//x[ {clauses} ]")
        return asta.size(), sta_blowup_size(asta)

    def test_asta_linear_sta_exponential(self):
        (a_states2, a_trans2), (s_states2, s_trans2) = self.sizes(2)
        (a_states4, a_trans4), (s_states4, s_trans4) = self.sizes(4)
        # ASTA grows linearly ...
        assert a_states4 - a_states2 == 4
        assert a_trans4 - a_trans2 == 8
        # ... the STA transition relation at least quadruples per +2
        # clauses (the 2^n DNF of the selecting formula).
        assert s_trans4 > 4 * s_trans2 / 2
        assert s_trans4 > s_trans2 + 2**4

    def test_blowup_hits_state_bound_eventually(self):
        clauses = " and ".join(f"(a{2*i+1} or a{2*i+2})" for i in range(9))
        asta = compile_xpath(f"//x[ {clauses} ]")
        with pytest.raises(AlternationError):
            asta_to_sta(asta, max_states=64)
