"""The set-at-a-time vectorized evaluator (repro.engine.frontier)."""

import numpy as np
import pytest

from repro.engine import frontier
from repro.engine.api import Engine
from repro.engine.registry import get_strategy, resolve
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

XML = (
    "<site>"
    "<a><x/><b/><c><b/><d/></c></a>"
    "<b><a><b/></a></b>"
    "<keyword/>"
    "<listitem><text><keyword><emph/></keyword></text></listitem>"
    "</site>"
)

QUERIES = [
    "/site",
    "/site/a/b",
    "//b",
    "//a//b",
    "//*",
    "//node()",
    "/site/*/b",
    "//a[b]",
    "//a[.//b and c]",
    "//a[not(b)]",
    "//b[not(.//a) or x]",
    "//c/following-sibling::b",
    "/site/a/b/following-sibling::node()",
    "//listitem[.//keyword and .//emph]",
    "//a[/site/keyword]",
    "//missing",
    "//a[missing]",
    "//keyword[.]",
]


@pytest.fixture(scope="module")
def index():
    return TreeIndex(BinaryTree.from_document(parse_xml(XML)))


class TestOracleIdentity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_reference(self, index, query):
        path = parse_xpath(query)
        expected = evaluate_reference(index.tree, path)
        accepted, got = frontier.evaluate(path, index)
        assert got == expected
        assert accepted == bool(expected)

    def test_matches_reference_on_encoded_doc(self):
        tree = BinaryTree.from_document(
            parse_xml('<r a="1"><x b="2">text</x><y>more</y></r>'),
            encode_attributes=True,
            encode_text=True,
        )
        index = TreeIndex(tree)
        for query in (
            "//x[@b]",
            "/r[@a]/x",
            "//@b",
            "//x/text()",
            "//*",
            "//node()",
            "/r/*[text()]",
        ):
            path = parse_xpath(query)
            _, got = frontier.evaluate(path, index)
            assert got == evaluate_reference(tree, path), query

    def test_degenerate_single_node_document(self):
        index = TreeIndex(BinaryTree.from_spec("r"))
        assert frontier.evaluate(parse_xpath("/r"), index) == (True, [0])
        assert frontier.evaluate(parse_xpath("/x"), index) == (False, [])
        assert frontier.evaluate(parse_xpath("//r[x]"), index) == (False, [])

    def test_fig4_mix_on_xmark(self, xmark_index):
        from repro.xmark.queries import QUERIES as FIG4

        naive = Engine(xmark_index, strategy="naive")
        for qid, query in FIG4.items():
            expected = list(naive.prepare(query).execute().ids)
            _, got = frontier.evaluate(parse_xpath(query), xmark_index)
            assert got == expected, qid

    def test_results_sorted_and_unique(self, index):
        _, ids = frontier.evaluate(parse_xpath("//a//b"), index)
        assert ids == sorted(set(ids))
        assert all(isinstance(v, int) for v in ids)


class TestFragment:
    def test_supports_forward_absolute_only(self):
        strategy = get_strategy("vectorized")
        assert strategy.supports(parse_xpath("//a//b[c]"))
        assert strategy.supports(parse_xpath("/a/following-sibling::b"))
        assert not strategy.supports(parse_xpath("//a/parent::b"))
        assert not strategy.supports(parse_xpath("a/b"))  # relative

    def test_backward_axes_resolve_through_fallback(self):
        assert resolve("vectorized", parse_xpath("//a/parent::b")).name == "mixed"

    def test_relative_path_resolves_to_optimized(self):
        assert resolve("vectorized", parse_xpath("a/b")).name == "optimized"

    def test_evaluate_rejects_off_fragment_queries(self, index):
        with pytest.raises(ValueError, match="vectorized fragment"):
            frontier.evaluate(parse_xpath("//a/parent::b"), index)

    def test_engine_integration(self, index):
        engine = Engine(index, strategy="vectorized")
        assert engine.select("//a//b") == [3, 5, 9]
        plan = engine.prepare("//a//b")
        assert plan.strategy.name == "vectorized"
        # Backward axes silently route through the mixed pipeline.
        mixed_plan = engine.prepare("//b/parent::a")
        assert mixed_plan.strategy.name == "mixed"


class TestCounters:
    def test_visited_counts_array_element_touches(self, index):
        stats = EvalStats()
        _, ids = frontier.evaluate(parse_xpath("//b"), index, stats)
        # One candidate pass over the 'b' array: every element touched.
        assert stats.visited == index.labels.count("b")
        assert stats.selected == len(ids)
        assert stats.jumps >= 1

    def test_probes_count_batched_searches(self, index):
        stats = EvalStats()
        frontier.evaluate(parse_xpath("//a/b"), index, stats)
        assert stats.index_probes > 0

    def test_predicate_candidates_are_counted(self, index):
        plain, with_pred = EvalStats(), EvalStats()
        frontier.evaluate(parse_xpath("//a"), index, plain)
        frontier.evaluate(parse_xpath("//a[.//b]"), index, with_pred)
        assert with_pred.visited > plain.visited


class TestVectorizedPrimitives:
    def test_staircase_prunes_nested_ranges(self, index):
        fr = np.asarray([1, 3, 4], dtype=np.int64)  # 3,4 nested under... check
        ctx, ends = frontier._staircase(index, fr)
        # node 1 subtree is [1,7): nodes 3 and 4 are nested, pruned.
        assert ctx.tolist() == [1]
        assert ends.tolist() == [int(index.tree.xml_end[1])]

    def test_in_sorted_empty(self):
        mask = frontier._in_sorted(
            np.asarray([1, 2], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            None,
        )
        assert mask.tolist() == [False, False]

    def test_candidates_wildcard_excludes_encoded(self):
        tree = BinaryTree.from_document(
            parse_xml('<r a="1">x</r>'),
            encode_attributes=True,
            encode_text=True,
        )
        index = TreeIndex(tree)
        from repro.xpath.ast import Axis

        star = frontier._candidates(index, Axis.CHILD, "*")
        everything = frontier._candidates(index, Axis.CHILD, "node()")
        assert star.tolist() == [0]
        assert everything.tolist() == [0, 1, 2]
