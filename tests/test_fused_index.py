"""Property tests for the fused numpy jump index.

The fused per-label-set union arrays of
:meth:`repro.index.labels.LabelIndex.fused` must agree with a
pure-``bisect`` per-label reference on random trees and random label-id
sets -- they are the substrate of every dt/ft jump the interned machine
performs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.jumping import OMEGA, TreeIndex
from repro.index.labels import LabelIndex
from repro.tree.binary import BinaryTree

from strategies import tree_specs


def _reference_first_in_range(lists, label_ids, lo, hi):
    """The original O(|L| log n) per-label bisect loop."""
    best = -1
    for lab in label_ids:
        lst = lists[lab]
        i = bisect_left(lst, lo)
        if i < len(lst):
            v = lst[i]
            if v < hi and (best == -1 or v < best):
                best = v
    return best


def _reference_count_in_range(lists, label_ids, lo, hi):
    total = 0
    for lab in label_ids:
        lst = lists[lab]
        total += bisect_right(lst, hi - 1) - bisect_left(lst, lo)
    return total


@given(spec=tree_specs(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_fused_queries_match_bisect_reference(spec, data):
    tree = BinaryTree.from_spec(spec)
    index = LabelIndex(tree)
    lists = [index.nodes(name) for name in tree.labels]
    nlabels = len(tree.labels)
    label_ids = data.draw(
        st.lists(
            st.integers(0, nlabels - 1), min_size=0, max_size=nlabels
        )
    )
    lo = data.draw(st.integers(-1, tree.n + 1))
    hi = data.draw(st.integers(-1, tree.n + 2))
    assert index.first_in_range(label_ids, lo, hi) == (
        _reference_first_in_range(lists, label_ids, lo, hi)
    )
    if hi >= lo:
        assert index.count_in_range(label_ids, lo, hi) == (
            _reference_count_in_range(lists, label_ids, lo, hi)
        )


@given(spec=tree_specs(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_dt_ft_match_reference(spec, data):
    tree = BinaryTree.from_spec(spec)
    index = TreeIndex(tree)
    lists = [index.labels.nodes(name) for name in tree.labels]
    nlabels = len(tree.labels)
    ids = data.draw(
        st.lists(st.integers(0, nlabels - 1), min_size=1, max_size=nlabels)
    )
    v = data.draw(st.integers(0, tree.n - 1))
    hit = index.dt(v, ids)
    ref = _reference_first_in_range(lists, ids, v + 1, tree.bend(v))
    assert hit == (OMEGA if ref == -1 else ref)
    v0 = data.draw(st.integers(0, tree.n - 1))
    lo, hi = tree.bend(v), tree.bend(v0)
    ref = -1 if lo >= hi else _reference_first_in_range(lists, ids, lo, hi)
    assert index.ft(v, ids, v0) == (OMEGA if ref == -1 else ref)


@given(spec=tree_specs())
@settings(max_examples=60, deadline=None)
def test_topmost_in_subtree_matches_chain_recipe(spec):
    """The fused walk equals the literal pi0=dt, pi_{k+1}=ft recipe."""
    tree = BinaryTree.from_spec(spec)
    index = TreeIndex(tree)
    for name in tree.labels:
        ids = index.label_ids([name])
        for v in range(tree.n):
            expected = []
            cur = index.dt(v, ids)
            while cur != OMEGA:
                expected.append(cur)
                cur = index.ft(cur, ids, v)
            assert index.topmost_in_subtree(v, ids) == expected


class TestFusedCache:
    def test_fused_is_cached_per_sorted_id_set(self):
        tree = BinaryTree.from_spec(("r", "a", ("b", "a"), "c"))
        index = LabelIndex(tree)
        a, b = tree.label_ids["a"], tree.label_ids["b"]
        f1 = index.fused([a, b])
        f2 = index.fused([b, a])  # order-insensitive alias
        assert f1 is f2
        assert f1.lst == sorted(
            index.nodes("a") + index.nodes("b")
        )
        assert f1.arr.dtype == np.int64

    def test_fused_empty_set(self):
        tree = BinaryTree.from_spec("r")
        index = LabelIndex(tree)
        fused = index.fused([])
        assert fused.size == 0
        assert fused.first_at_or_after(0, 10) == -1

    def test_count_simplified(self):
        tree = BinaryTree.from_spec(("r", "a", "a", "b"))
        index = LabelIndex(tree)
        assert index.count("a") == 2
        assert index.count("b") == 1
        assert index.count("zzz") == 0
