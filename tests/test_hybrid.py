"""Hybrid (start-anywhere) evaluation (Section 4.4 / Figure 5)."""

import pytest
from hypothesis import given, settings

from repro.counters import EvalStats
from repro.engine import optimized
from repro.engine.hybrid import hybrid_evaluate, is_hybrid_applicable, plan_pivot
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xmark.configs import CONFIG_SPECS, make_config_tree
from repro.xmark.queries import HYBRID_QUERY
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees


class TestPlanning:
    def test_applicable_descendant_chain(self):
        assert is_hybrid_applicable(parse_xpath("//a//b//c"))

    @pytest.mark.parametrize(
        "query", ["/a/b", "//a[b]//c", "//a//*", "//a/following-sibling::b"]
    )
    def test_not_applicable(self, query):
        assert not is_hybrid_applicable(parse_xpath(query))

    def test_pivot_picks_rarest_label(self):
        tree = BinaryTree.from_xml(
            "<r><a><b/><b/><b/></a><a><c/></a></r>"
        )
        index = TreeIndex(tree)
        path = parse_xpath("//a//b")
        assert plan_pivot(path, index) == 0  # 2 a's < 3 b's
        path = parse_xpath("//b//c")
        assert plan_pivot(path, index) == 1  # 1 c < 3 b's

    def test_fallback_for_non_chain_query(self, xmark_index):
        # Queries outside the chain fragment silently use the optimized
        # engine and still return correct results.
        query = "/site/people/person[ address and (phone or homepage) ]"
        expected = evaluate_reference(xmark_index.tree, parse_xpath(query))
        assert hybrid_evaluate(query, xmark_index)[1] == expected


class TestUpwardCheck:
    def test_prefix_checked_through_ancestors(self):
        tree = BinaryTree.from_xml(
            "<r><a><x><b/></x></a><y><b/></y></r>"
        )
        index = TreeIndex(tree)
        _, sel = hybrid_evaluate("//a//b", index)
        assert [tree.label(v) for v in sel] == ["b"]
        assert sel == [3]  # only the b under the a

    def test_interleaved_prefix_order_matters(self):
        # //a//c//b: ancestors must contain c below a, in order.
        tree = BinaryTree.from_xml(
            "<r><c><a><b/></a></c><a><c><b/></c></a></r>"
        )
        index = TreeIndex(tree)
        _, sel = hybrid_evaluate("//a//c//b", index)
        assert len(sel) == 1
        assert tree.parent[sel[0]] != -1


class TestFigure5Configs:
    @pytest.mark.parametrize("name", sorted(CONFIG_SPECS))
    def test_selected_counts_scaled(self, name):
        tree = make_config_tree(name, fraction=0.05)
        index = TreeIndex(tree)
        _, sel = hybrid_evaluate(HYBRID_QUERY, index)
        asta = compile_xpath(HYBRID_QUERY)
        _, sel_regular = optimized.evaluate(asta, index)
        assert sel == sel_regular
        expected = evaluate_reference(tree, parse_xpath(HYBRID_QUERY))
        assert sel == expected

    @pytest.mark.parametrize("name", ["A", "B"])
    def test_best_cases_visit_far_fewer_nodes(self, name):
        index = TreeIndex(make_config_tree(name, fraction=0.05))
        s_h, s_r = EvalStats(), EvalStats()
        hybrid_evaluate(HYBRID_QUERY, index, s_h)
        optimized.evaluate(compile_xpath(HYBRID_QUERY), index, s_r)
        assert s_h.visited * 10 < s_r.visited

    def test_exact_counts_full_size_config_a(self):
        spec = CONFIG_SPECS["A"]
        tree = make_config_tree("A", fraction=1.0)
        hist = tree.label_histogram()
        assert hist["listitem"] == spec.listitems
        assert hist["keyword"] == spec.keywords_below
        assert hist["emph"] == spec.emphs
        index = TreeIndex(tree)
        _, sel = hybrid_evaluate(HYBRID_QUERY, index)
        assert len(sel) == spec.expected_selected


class TestPropertyEquivalence:
    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_hybrid_matches_reference_on_chains(self, tree):
        index = TreeIndex(tree)
        for query in ("//a//b", "//b//a//c", "//d"):
            expected = evaluate_reference(tree, parse_xpath(query))
            assert hybrid_evaluate(query, index)[1] == expected


class TestPredicateChains:
    """Hybrid with a final forward predicate (text-predicate analogue)."""

    def test_applicable_with_final_predicate(self):
        assert is_hybrid_applicable(parse_xpath("//a//b[c]"))
        assert is_hybrid_applicable(parse_xpath("//a//b[.//c and d]"))
        assert not is_hybrid_applicable(parse_xpath("//a[x]//b"))
        assert not is_hybrid_applicable(parse_xpath("//a//b[../c]"))

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_with_predicates(self, tree):
        index = TreeIndex(tree)
        for query in ("//a//b[c]", "//b[c or d]", "//a//c[not(b)]"):
            expected = evaluate_reference(tree, parse_xpath(query))
            assert hybrid_evaluate(query, index)[1] == expected, query

    def test_q05_variant_on_xmark(self, xmark_index):
        query = "//listitem//keyword[emph]"
        expected = evaluate_reference(
            xmark_index.tree, parse_xpath(query)
        )
        assert hybrid_evaluate(query, xmark_index)[1] == expected
