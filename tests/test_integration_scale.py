"""Medium-scale integration pass: all engines on a ~20k-node XMark doc.

The unit suite runs at scale 0.12; this module is the one place where the
whole stack (parser -> generator -> index -> four ASTA engines -> hybrid
-> deterministic -> stepwise -> mixed) is exercised on a document big
enough for jump chains, memo tables and staircase pruning to matter.
"""

import pytest

from repro.baselines.stepwise import stepwise_evaluate
from repro.engine import deterministic, hybrid, jumping, memo, naive, optimized
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference


@pytest.fixture(scope="module")
def index():
    return TreeIndex(XMarkGenerator(scale=0.6, seed=2026).tree())


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_all_engines_at_scale(qid, index):
    query = QUERIES[qid]
    path = parse_xpath(query)
    expected = evaluate_reference(index.tree, path)
    asta = compile_xpath(path)
    assert naive.evaluate(asta, index)[1] == expected
    assert jumping.evaluate(asta, index)[1] == expected
    assert memo.evaluate(asta, index)[1] == expected
    assert optimized.evaluate(asta, index)[1] == expected
    assert hybrid.hybrid_evaluate(path, index)[1] == expected
    assert stepwise_evaluate(path, index) == expected


def test_deterministic_and_mixed_at_scale(index):
    from repro.engine.mixed import mixed_evaluate

    for query in ("//listitem//keyword", "/site/regions/europe/item",
                  "//keyword/ancestor::listitem", "//mail/../../name"):
        path = parse_xpath(query)
        expected = evaluate_reference(index.tree, path)
        if path.has_backward_axes():
            assert mixed_evaluate(path, index)[1] == expected
        else:
            assert deterministic.evaluate(path, index)[1] == expected
