"""Interner equivalence: the int-keyed machine matches the naive oracle.

The interned hot path (:class:`repro.engine.intern.RunTables` + the
sweep/fold fast paths of :func:`repro.engine.core._run_interned`) must be
observationally identical to the plain machine with memoization off, for
every registered strategy, with cold and warmed tables, on random trees
and random queries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.engine import registry
from repro.engine.api import Engine
from repro.engine.core import run_asta
from repro.engine.intern import RunTables
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

from strategies import binary_trees, xpath_queries


@pytest.fixture(scope="module")
def xmark_index():
    return TreeIndex(XMarkGenerator(scale=0.15, seed=11).tree())


class TestMemoOnOffEquivalence:
    """memo=True (interned) vs memo=False (plain scan) -- same answers."""

    @given(tree=binary_trees(), query=xpath_queries())
    @settings(max_examples=120, deadline=None)
    def test_random_trees_and_queries(self, tree, query):
        index = TreeIndex(tree)
        asta = compile_xpath(query)
        plain = run_asta(asta, index, jumping=True, memo=False, ip=True)
        for jumping in (False, True):
            for ip in (False, True):
                interned = run_asta(
                    asta, index, jumping=jumping, memo=True, ip=ip
                )
                assert interned == plain, (query, jumping, ip)

    def test_fig4_mix_on_xmark(self, xmark_index):
        for qid, query in QUERIES.items():
            asta = compile_xpath(query)
            plain = run_asta(
                asta, xmark_index, jumping=False, memo=False, ip=False
            )
            interned = run_asta(
                asta, xmark_index, jumping=True, memo=True, ip=True
            )
            assert interned == plain, qid


class TestWarmedTables:
    """Warm RunTables across runs never change answers."""

    def test_reused_tables_identical_answers(self, xmark_index):
        for qid, query in QUERIES.items():
            asta = compile_xpath(query)
            tables = RunTables(asta, xmark_index, jumping=True)
            first = run_asta(asta, xmark_index, tables=tables)
            second = run_asta(asta, xmark_index, tables=tables)
            cold = run_asta(asta, xmark_index)
            assert first == second == cold, qid

    def test_mismatched_tables_are_rejected(self, xmark_index):
        """run_asta builds fresh tables when given tables for another
        automaton or index (no silent cross-contamination)."""
        asta_a = compile_xpath("//listitem")
        asta_b = compile_xpath("//keyword")
        tables_a = RunTables(asta_a, xmark_index, jumping=True)
        accepted, ids = run_asta(asta_b, xmark_index, tables=tables_a)
        _, expected = run_asta(asta_b, xmark_index)
        assert ids == expected

    def test_ip_toggle_shares_tables(self, xmark_index):
        """The same tables serve ip=True and ip=False runs."""
        asta = compile_xpath("//listitem[.//keyword]//parlist")
        tables = RunTables(asta, xmark_index, jumping=True)
        with_ip = run_asta(asta, xmark_index, ip=True, tables=tables)
        without = run_asta(asta, xmark_index, ip=False, tables=tables)
        assert with_ip == without


class TestEveryStrategyAgainstOracle:
    """Every registered strategy == naive oracle, warm and cold."""

    @pytest.mark.parametrize("name", registry.strategy_names())
    def test_strategy_matches_naive_with_warm_plans(self, name, xmark_index):
        engine = Engine(xmark_index)
        for qid, query in QUERIES.items():
            oracle = engine.prepare(query, strategy="naive").execute()
            plan = engine.prepare(query, strategy=name)
            cold = plan.execute()
            warm = plan.execute()  # second run: fully warmed tables
            assert list(cold.ids) == list(oracle.ids), (name, qid, "cold")
            assert list(warm.ids) == list(oracle.ids), (name, qid, "warm")

    @pytest.mark.parametrize("name", registry.strategy_names())
    @given(tree=binary_trees(), query=xpath_queries())
    @settings(max_examples=25, deadline=None)
    def test_strategy_matches_naive_on_random_inputs(self, name, tree, query):
        engine = Engine(TreeIndex(tree))
        oracle = engine.prepare(query, strategy="naive").execute()
        plan = engine.prepare(query, strategy=name)
        assert list(plan.execute().ids) == list(oracle.ids)
        assert list(plan.execute().ids) == list(oracle.ids)
