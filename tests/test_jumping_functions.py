"""Jumping functions dt/ft/lt/rt (Definition 3.2) against brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.jumping import OMEGA, TreeIndex
from repro.index.labels import LabelIndex
from repro.tree.binary import NIL, BinaryTree

from strategies import binary_trees, LABELS


def brute_dt(tree, v, labels):
    for w in range(v + 1, tree.bend(v)):
        if tree.label(w) in labels:
            return w
    return OMEGA


def brute_ft(tree, v, labels, v0):
    for w in range(tree.bend(v), tree.bend(v0)):
        if tree.label(w) in labels:
            return w
    return OMEGA


def brute_lt(tree, v, labels):
    cur = tree.left[v]
    while cur != NIL:
        if tree.label(cur) in labels:
            return cur
        cur = tree.left[cur]
    return OMEGA


def brute_rt(tree, v, labels):
    cur = tree.right[v]
    while cur != NIL:
        if tree.label(cur) in labels:
            return cur
        cur = tree.right[cur]
    return OMEGA


class TestFixed:
    def make(self):
        tree = BinaryTree.from_spec(
            ("r", ("a", "b", ("c", "b")), ("a", ("b", "c")), "b")
        )
        return tree, TreeIndex(tree)

    def test_dt_finds_first_descendant_in_doc_order(self):
        tree, index = self.make()
        ids = index.label_ids(["b"])
        assert index.dt(0, ids) == 2  # first b under r

    def test_dt_respects_binary_subtree(self):
        tree, index = self.make()
        ids = index.label_ids(["b"])
        # binary subtree of node 1 (first a) spans to the end of r's
        # content, so the b inside the second a is also reachable.
        assert index.dt(1, ids) == 2

    def test_ft_skips_own_binary_subtree(self):
        tree, index = self.make()
        ids = index.label_ids(["b"])
        first = index.dt(0, ids)
        second = index.ft(first, ids, 0)
        # The binary subtree of node 2 includes its following siblings'
        # subtrees (the b at id 4), so the next *following* b is id 6.
        assert second == 6

    def test_omega_when_absent(self):
        tree, index = self.make()
        ids = index.label_ids(["zzz"])
        assert ids == []  # unseen labels are dropped
        assert index.dt(0, ids) == OMEGA

    def test_topmost_enumeration(self):
        tree, index = self.make()
        ids = index.label_ids(["a"])
        # The second a (id 5) is a *binary* descendant of the first (id 1):
        # only the top-most one with respect to binary subtrees survives.
        assert index.topmost_in_subtree(0, ids) == [1]
        # From inside the first a's subtree the nested one is reachable.
        assert index.topmost_in_subtree(1, ids) == [5]

    def test_count_is_global(self):
        tree, index = self.make()
        assert index.count("b") == 4
        assert index.count("zzz") == 0


class TestAgainstBruteForce:
    @given(
        binary_trees(max_depth=4, max_children=4),
        st.frozensets(st.sampled_from(LABELS), min_size=1, max_size=3),
        st.data(),
    )
    @settings(max_examples=60)
    def test_all_jumps_match(self, tree, labels, data):
        index = TreeIndex(tree)
        ids = index.label_ids(labels)
        v = data.draw(st.integers(0, tree.n - 1))
        assert index.dt(v, ids) == brute_dt(tree, v, labels)
        assert index.lt(v, ids) == brute_lt(tree, v, labels)
        assert index.rt(v, ids) == brute_rt(tree, v, labels)
        v0 = data.draw(st.integers(0, v))
        if tree.bend(v) <= tree.bend(v0):
            assert index.ft(v, ids, v0) == brute_ft(tree, v, labels, v0)

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=40)
    def test_topmost_nodes_are_disjoint_and_complete(self, tree):
        index = TreeIndex(tree)
        for label in set(tree.labels):
            ids = index.label_ids([label])
            tops = index.topmost_in_subtree(0, ids)
            # Disjoint binary subtrees, in document order.
            for x, y in zip(tops, tops[1:]):
                assert tree.bend(x) <= y
            # Every labelled node is inside some top's binary subtree
            # (or is the root itself, excluded by dt's strictness).
            for w in range(1, tree.n):
                if tree.label(w) == label:
                    assert any(t <= w < tree.bend(t) for t in tops)


class TestLabelIndex:
    def test_count_in_range(self):
        tree = BinaryTree.from_spec(("r", "a", "b", "a", "b", "a"))
        li = LabelIndex(tree)
        a = tree.label_id("a")
        assert li.count_in_range([a], 0, tree.n) == 3
        assert li.count_in_range([a], 2, 4) == 1

    def test_first_in_range_picks_minimum_across_labels(self):
        tree = BinaryTree.from_spec(("r", "b", "a"))
        li = LabelIndex(tree)
        ids = [tree.label_id("a"), tree.label_id("b")]
        assert li.first_in_range(ids, 1, tree.n) == 1

    def test_nodes_sorted(self):
        tree = BinaryTree.from_spec(("r", ("a", "b"), "b", ("c", "b")))
        li = LabelIndex(tree)
        nodes = li.nodes("b")
        assert nodes == sorted(nodes)
        assert len(nodes) == 3


class TestLabelIndexOverSuccinct:
    def test_label_index_works_on_succinct_backend(self):
        from repro.index.succinct import SuccinctTree

        tree = BinaryTree.from_spec(("r", ("a", "b"), "b", ("c", "b")))
        succ = SuccinctTree.from_binary(tree)
        li_succ = LabelIndex(succ)
        li_tree = LabelIndex(tree)
        assert li_succ.nodes("b") == li_tree.nodes("b")
        assert li_succ.count("b") == li_tree.count("b") == 3
