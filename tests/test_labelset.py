"""LabelSet algebra: unit tests plus set-theoretic laws via hypothesis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.labelset import ANY, LabelSet

from strategies import label_sets, LABELS

PROBES = list(LABELS) + ["zz-not-mentioned"]


def semantics(ls: LabelSet) -> frozenset:
    """Concrete membership over the probe universe."""
    return frozenset(p for p in PROBES if ls.contains(p))


class TestBasics:
    def test_finite_membership(self):
        ls = LabelSet.of("a", "b")
        assert ls.contains("a") and "b" in ls
        assert not ls.contains("c")
        assert ls.is_finite() and not ls.is_empty() and not ls.is_any()

    def test_cofinite_membership(self):
        ls = LabelSet.not_of("a")
        assert not ls.contains("a")
        assert ls.contains("anything-else")
        assert not ls.is_finite()

    def test_any_and_empty(self):
        assert ANY.is_any()
        assert ANY.contains("x")
        assert LabelSet.empty().is_empty()
        assert not LabelSet.empty().contains("x")

    def test_equality_and_hash(self):
        assert LabelSet.of("a") == LabelSet.of("a")
        assert LabelSet.of("a") != LabelSet.not_of("a")
        assert hash(LabelSet.of("a", "b")) == hash(LabelSet.of("b", "a"))

    def test_repr(self):
        assert repr(LabelSet.of("a")) == "{a}"
        assert repr(LabelSet.not_of("a")) == "Σ\\{a}"
        assert repr(ANY) == "Σ"

    def test_positive_ids(self):
        from repro.tree.binary import BinaryTree

        tree = BinaryTree.from_spec(("a", "b"))
        assert sorted(LabelSet.of("a", "b").positive_ids(tree)) == [0, 1]
        assert LabelSet.of("zzz").positive_ids(tree) == []
        assert LabelSet.not_of("a").positive_ids(tree) is None

    def test_sample_labels(self):
        ls = LabelSet.of("a", "c")
        assert sorted(ls.sample_labels(LABELS)) == ["a", "c"]


class TestAlgebraLaws:
    @given(label_sets(), label_sets())
    @settings(max_examples=80)
    def test_union_semantics(self, x, y):
        assert semantics(x.union(y)) == semantics(x) | semantics(y)

    @given(label_sets(), label_sets())
    @settings(max_examples=80)
    def test_intersection_semantics(self, x, y):
        assert semantics(x.intersection(y)) == semantics(x) & semantics(y)

    @given(label_sets(), label_sets())
    @settings(max_examples=80)
    def test_difference_semantics(self, x, y):
        assert semantics(x.difference(y)) == semantics(x) - semantics(y)

    @given(label_sets())
    @settings(max_examples=40)
    def test_complement_involution(self, x):
        assert x.complement().complement() == x

    @given(label_sets())
    @settings(max_examples=40)
    def test_complement_semantics(self, x):
        assert semantics(x.complement()) == frozenset(PROBES) - semantics(x)

    @given(label_sets(), label_sets())
    @settings(max_examples=40)
    def test_overlaps_agrees_with_intersection(self, x, y):
        # overlaps is defined on the full (infinite) universe, so it may be
        # true even when the finite probe set shows no common member --
        # but a non-empty probed intersection must imply overlaps.
        if semantics(x) & semantics(y):
            assert x.overlaps(y)

    @given(label_sets())
    @settings(max_examples=40)
    def test_empty_is_identity_for_union(self, x):
        assert x.union(LabelSet.empty()) == x
