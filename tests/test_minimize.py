"""Minimization and equivalence (Appendix A.2, Theorem A.1)."""

from hypothesis import given, settings

from repro.automata.examples import sta_a_with_b_below, sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.labelset import ANY, LabelSet
from repro.automata.minimize import (
    atoms,
    bdsta_equivalent,
    complete_bottomup,
    complete_topdown,
    minimize_bdsta,
    minimize_tdsta,
    tdsta_equivalent,
)
from repro.automata.sta import STA, Transition
from repro.tree.binary import BinaryTree

from strategies import binary_trees


def redundant_desc_a_desc_b() -> STA:
    """Example 2.1 with a duplicated, behaviourally identical state q1b."""
    return STA(
        states=["q0", "q1", "q1b"],
        top=["q0"],
        bottom=["q0", "q1", "q1b"],
        selecting={"q1": LabelSet.of("b"), "q1b": LabelSet.of("b")},
        transitions=[
            Transition("q0", LabelSet.of("a"), "q1", "q0"),
            Transition("q0", LabelSet.not_of("a"), "q0", "q0"),
            Transition("q1", LabelSet.of("b"), "q1b", "q1"),
            Transition("q1", LabelSet.not_of("b"), "q1", "q1b"),
            Transition("q1b", LabelSet.of("b"), "q1", "q1b"),
            Transition("q1b", LabelSet.not_of("b"), "q1b", "q1"),
        ],
    )


class TestAtoms:
    def test_atoms_cover_mentioned_plus_rest(self):
        sta = sta_desc_a_desc_b()
        reps = atoms(sta)
        names = [rep for rep, _ in reps]
        assert names[:-1] == ["a", "b"]
        assert reps[-1][1].contains("zz") and not reps[-1][1].contains("a")


class TestCompletion:
    def test_complete_topdown_adds_sink(self):
        partial = STA(
            ["q"],
            ["q"],
            ["q"],
            {},
            [Transition("q", LabelSet.of("a"), "q", "q")],
        )
        comp = complete_topdown(partial)
        assert comp.is_topdown_complete()
        assert not partial.is_topdown_complete()

    def test_complete_topdown_noop_when_complete(self):
        sta = sta_desc_a_desc_b()
        assert complete_topdown(sta) is sta

    def test_complete_bottomup(self):
        partial = STA(
            ["q"],
            ["q"],
            ["q"],
            {},
            [Transition("q", LabelSet.of("a"), "q", "q")],
        )
        comp = complete_bottomup(partial)
        assert comp.is_bottomup_complete()


class TestMinimizeTDSTA:
    def test_already_minimal_is_stable(self):
        sta = sta_desc_a_desc_b()
        mini = minimize_tdsta(sta)
        assert len(mini.states) == len(sta.states)
        assert tdsta_equivalent(mini, sta)

    def test_redundant_state_collapses(self):
        red = redundant_desc_a_desc_b()
        mini = minimize_tdsta(red)
        assert len(mini.states) == 2
        assert tdsta_equivalent(mini, sta_desc_a_desc_b())

    def test_minimization_idempotent(self):
        mini = minimize_tdsta(redundant_desc_a_desc_b())
        again = minimize_tdsta(mini)
        assert len(again.states) == len(mini.states)

    def test_dtd_recognizer_minimal_three_states(self):
        mini = minimize_tdsta(sta_dtd_root_a())
        assert len(mini.states) == 3  # q0, universal, sink

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=40)
    def test_minimized_preserves_semantics(self, tree):
        original = redundant_desc_a_desc_b()
        mini = minimize_tdsta(original)
        assert mini.selected_nodes(tree) == original.selected_nodes(tree)
        assert mini.accepts(tree) == original.accepts(tree)

    def test_rejects_nondeterministic_input(self):
        import pytest

        nd = STA(
            ["q", "r"],
            ["q", "r"],
            ["q"],
            {},
            [Transition("q", ANY, "q", "q")],
        )
        with pytest.raises(ValueError):
            minimize_tdsta(nd)


class TestMinimizeBDSTA:
    def test_example_a1_is_minimal(self):
        sta = sta_a_with_b_below()
        mini = minimize_bdsta(sta)
        # Completion may add a sink; the core states cannot shrink below
        # the original two.
        assert len(mini.states) >= 2
        assert bdsta_equivalent(mini, sta)

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=40)
    def test_minimized_preserves_semantics(self, tree):
        original = sta_a_with_b_below()
        mini = minimize_bdsta(original)
        assert mini.selected_nodes(tree) == original.selected_nodes(tree)
        assert mini.accepts(tree) == original.accepts(tree)

    def test_duplicate_state_collapses(self):
        base = sta_a_with_b_below()
        # Duplicate q1 as q1b everywhere.
        dup_transitions = list(base.transitions)
        for t in base.transitions:
            dup_transitions.append(
                Transition(
                    "q1b" if t.q == "q1" else t.q,
                    t.labels,
                    "q1b" if t.q1 == "q1" else t.q1,
                    t.q2,
                )
            )
        dup = STA(
            ["q0", "q1", "q1b"],
            ["q0", "q1", "q1b"],
            ["q0"],
            {"q1": base.selecting["q1"], "q1b": base.selecting["q1"]},
            dup_transitions,
        )
        # The duplicated automaton is no longer deterministic; skip unless
        # it is (construction above may introduce nondeterminism).
        if dup.is_bottomup_deterministic():
            mini = minimize_bdsta(dup)
            assert len(mini.states) <= len(dup.states)


class TestEquivalence:
    def test_inequivalent_tdstas(self):
        a = sta_desc_a_desc_b()
        b = sta_dtd_root_a()
        assert not tdsta_equivalent(a, b)

    def test_equivalence_is_reflexive(self):
        a = sta_desc_a_desc_b()
        assert tdsta_equivalent(a, a)
        bu = sta_a_with_b_below()
        assert bdsta_equivalent(bu, bu)

    def test_selection_matters_for_equivalence(self):
        base = sta_desc_a_desc_b()
        # Same language, different selection: select c's instead of b's.
        other = STA(
            base.states,
            base.top,
            base.bottom,
            {"q1": LabelSet.of("c")},
            base.transitions,
        )
        assert not tdsta_equivalent(base, other)
