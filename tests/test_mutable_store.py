"""Mutable corpora: generations, retirement, compaction, and sync.

Exercises the incremental-update layer over the write-once bundle
format: ``DocumentStore.add/replace/remove`` publishing new generations
atomically, retired bundles staying readable for live readers until
``compact()``, ``sync()`` applying the minimal operation set a source
directory implies, and the manifest healing itself across the
publish-then-record crash window.
"""

import os
import threading
import time

import pytest

from repro.engine.api import Engine
from repro.engine.workspace import Workspace
from repro.store import (
    DocumentStore,
    StoreError,
    bundle_identity,
    bytes_fingerprint,
    corpus_stamp,
    file_fingerprint,
    live_readers,
    open_document,
    read_manifest,
    save_document,
    text_fingerprint,
)
from repro.store.manifest import RETIRED_PREFIX, load_manifest

XML_V1 = "<r><a><b/></a><a/><c><b/></c></r>"
XML_V2 = "<r><a><b/><b/></a></r>"


def retired_names(root):
    return sorted(
        entry
        for entry in os.listdir(str(root))
        if entry.startswith(RETIRED_PREFIX)
    )


class TestMutationAPI:
    def test_add_then_open(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        assert store.generation() == 1
        assert Engine(store.open("doc")).select("//a/b") == [2]

    def test_add_existing_raises(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        with pytest.raises(StoreError, match="already exists"):
            store.add("doc", XML_V2)

    def test_replace_missing_raises(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        with pytest.raises(StoreError, match="no document"):
            store.replace("doc", XML_V1)

    def test_replace_bumps_generation_and_retires(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        assert store.generation() == 2
        assert Engine(store.open("doc")).select("//a/b") == [2, 3]
        assert len(retired_names(tmp_path)) == 1

    def test_remove(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.remove("doc")
        assert "doc" not in store
        assert store.names() == []
        # The bundle is retired, not destroyed.
        assert len(retired_names(tmp_path)) == 1

    def test_remove_missing_raises(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        with pytest.raises(StoreError, match="no document"):
            store.remove("doc")

    def test_save_upserts(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.save("doc", XML_V1)
        store.save("doc", XML_V2)
        assert store.generation() == 2
        assert Engine(store.open("doc")).select("//a/b") == [2, 3]

    def test_generation_persists_across_reopen(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        fresh = DocumentStore(str(tmp_path))
        assert fresh.generation() == 2
        ops = [entry["op"] for entry in fresh.log()]
        assert ops == ["add", "replace"]

    def test_log_limit(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        for _ in range(3):
            store.replace("doc", XML_V2)
            store.replace("doc", XML_V1)
        assert len(store.log(limit=2)) == 2
        assert store.log(limit=2)[-1]["generation"] == store.generation()

    def test_mutation_survives_engine_roundtrip(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        # A workspace mounting the corpus sees only the new generation.
        with Workspace() as ws:
            ws.open_store(str(tmp_path))
            assert ws.select("//a/b", "doc") == [2, 3]


class TestContainsValidation:
    """Satellite: ``__contains__`` must route through ``path_for``."""

    def test_plain_membership(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        assert "doc" in store
        assert "other" not in store

    def test_traversal_names_are_not_contained(self, tmp_path):
        # A sibling bundle outside the corpus root must be invisible,
        # not reachable via "..".
        outside = tmp_path / "outside"
        save_document(XML_V1, str(outside / "doc"))
        corpus = tmp_path / "corpus"
        store = DocumentStore(str(corpus))
        store.add("doc", XML_V1)
        assert os.path.isdir(str(outside / "doc"))
        assert "../outside/doc" not in store
        assert ".." not in store
        assert "a/b" not in store

    def test_hidden_names_are_not_contained(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        for hidden in retired_names(tmp_path):
            assert hidden not in store

    def test_non_string_is_not_contained(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        assert 42 not in store
        assert None not in store


class TestClosedAccessors:
    """Satellite: every accessor raises a structured closed error."""

    def test_accessors_after_close(self, tmp_path):
        bundle = tmp_path / "doc"
        save_document(XML_V1, str(bundle))
        stored = open_document(str(bundle))
        stored.close()
        for access in (
            lambda: stored.tree,
            lambda: stored.n,
            lambda: stored.labels,
            stored.succinct,
        ):
            with pytest.raises(StoreError, match="is closed"):
                access()

    def test_close_is_idempotent(self, tmp_path):
        bundle = tmp_path / "doc"
        save_document(XML_V1, str(bundle))
        stored = open_document(str(bundle))
        stored.close()
        stored.close()


class TestRetireCompact:
    def test_compact_deletes_unreferenced_retired(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        assert len(retired_names(tmp_path)) == 1
        report = store.compact()
        assert len(report["deleted"]) == 1 and not report["kept"]
        assert retired_names(tmp_path) == []
        # Deleting garbage is itself a recorded generation.
        assert store.log()[-1]["op"] == "compact"

    def test_compact_without_garbage_is_a_noop(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        before = store.generation()
        report = store.compact()
        assert report == {
            "deleted": [],
            "kept": [],
            "generation": before,
        }

    def test_reader_keeps_old_generation_alive(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        stored = store.open("doc")
        old_ids = Engine(stored).select("//a/b")
        store.replace("doc", XML_V2)
        report = store.compact()
        assert len(report["kept"]) == 1 and not report["deleted"]
        retired = os.path.join(str(tmp_path), report["kept"][0])
        assert live_readers(retired) == 1
        # The renamed directory is the very publication the reader
        # mapped: identity is rename-stable, and the data still answers.
        assert bundle_identity(retired) == stored._reader_key
        assert Engine(stored).select("//a/b") == old_ids == [2]
        stored.close()
        assert live_readers(retired) == 0
        report = store.compact()
        assert len(report["deleted"]) == 1
        assert retired_names(tmp_path) == []

    def test_concurrent_reader_during_replace_and_compact(self, tmp_path):
        """A reader thread querying the old generation throughout a
        replace + compact never sees an error or a mixed answer."""
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        stored = store.open("doc")
        engine = Engine(stored)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    if engine.select("//a/b") != [2]:
                        failures.append("wrong ids")
                        return
                except Exception as exc:  # pragma: no cover - fail path
                    failures.append(f"{type(exc).__name__}: {exc}")
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(3):
                store.replace("doc", XML_V2)
                store.compact()
                store.replace("doc", XML_V1)
                store.compact()
                time.sleep(0.005)
        finally:
            stop.set()
            thread.join()
        assert failures == []
        stored.close()
        report = store.compact()
        assert not report["kept"]


class TestSync:
    def write_sources(self, base, files):
        src = base / "xml"
        src.mkdir(exist_ok=True)
        for name, body in files.items():
            (src / f"{name}.xml").write_text(body)
        return str(src)

    def test_initial_sync_adds_everything(self, tmp_path):
        src = self.write_sources(
            tmp_path, {"a": XML_V1, "b": XML_V2, "c": "<r/>"}
        )
        store = DocumentStore(str(tmp_path / "corpus"))
        report = store.sync(src)
        assert report["added"] == ["a", "b", "c"]
        assert report["generation"] == {"before": 0, "after": 3}
        assert store.names() == ["a", "b", "c"]

    def test_one_of_n_change_rebuilds_only_the_change(self, tmp_path):
        src = self.write_sources(
            tmp_path, {"a": XML_V1, "b": XML_V2, "c": "<r/>"}
        )
        corpus = tmp_path / "corpus"
        store = DocumentStore(str(corpus))
        store.sync(src)
        before = store.generation()
        mtimes = {
            name: os.stat(
                os.path.join(str(corpus), name, "header.json")
            ).st_mtime_ns
            for name in ("a", "b", "c")
        }
        (tmp_path / "xml" / "b.xml").write_text(XML_V1)
        report = store.sync(src)
        assert report["replaced"] == ["b"]
        assert report["added"] == [] and report["removed"] == []
        assert sorted(report["unchanged"]) == ["a", "c"]
        # Exactly one generation for exactly one changed document...
        assert report["generation"] == {"before": before, "after": before + 1}
        # ...and the untouched bundles were not rewritten.
        for name in ("a", "c"):
            full = os.path.join(str(corpus), name, "header.json")
            assert os.stat(full).st_mtime_ns == mtimes[name]
        full = os.path.join(str(corpus), "b", "header.json")
        assert os.stat(full).st_mtime_ns != mtimes["b"]

    def test_sync_removes_and_keeps(self, tmp_path):
        src = self.write_sources(tmp_path, {"a": XML_V1, "b": XML_V2})
        store = DocumentStore(str(tmp_path / "corpus"))
        store.sync(src)
        os.unlink(os.path.join(src, "b.xml"))
        kept = store.sync(src, delete=False)
        assert kept["kept"] == ["b"] and kept["removed"] == []
        assert "b" in store
        removed = store.sync(src)
        assert removed["removed"] == ["b"]
        assert "b" not in store

    def test_sync_is_idempotent(self, tmp_path):
        src = self.write_sources(tmp_path, {"a": XML_V1})
        store = DocumentStore(str(tmp_path / "corpus"))
        store.sync(src)
        gen = store.generation()
        report = store.sync(src)
        assert report["unchanged"] == ["a"]
        assert store.generation() == gen

    def test_dry_run_changes_nothing(self, tmp_path):
        src = self.write_sources(tmp_path, {"a": XML_V1, "b": XML_V2})
        store = DocumentStore(str(tmp_path / "corpus"))
        store.sync(src)
        (tmp_path / "xml" / "a.xml").write_text("<r><z/></r>")
        gen = store.generation()
        report = store.sync(src, dry_run=True)
        assert report["dry_run"] is True
        assert report["replaced"] == ["a"]
        assert store.generation() == gen
        assert Engine(store.open("a")).select("//a/b") == [2]

    def test_sync_compacts_on_request(self, tmp_path):
        src = self.write_sources(tmp_path, {"a": XML_V1})
        corpus = tmp_path / "corpus"
        store = DocumentStore(str(corpus))
        store.sync(src)
        (tmp_path / "xml" / "a.xml").write_text(XML_V2)
        report = store.sync(src, compact=True)
        assert len(report["compacted"]["deleted"]) == 1
        assert retired_names(corpus) == []

    def test_sync_records_fingerprint(self, tmp_path):
        src = self.write_sources(tmp_path, {"a": XML_V1})
        store = DocumentStore(str(tmp_path / "corpus"))
        store.sync(src)
        entry = store.manifest().documents["a"]
        path = os.path.join(src, "a.xml")
        assert entry["fingerprint"] == file_fingerprint(path)
        data = open(path, "rb").read()
        assert entry["fingerprint"] == bytes_fingerprint(data)
        assert entry["fingerprint"] == text_fingerprint(XML_V1)

    def test_duplicate_stems_rejected(self, tmp_path):
        src = tmp_path / "xml"
        src.mkdir()
        (src / "a.xml").write_text(XML_V1)
        (src / "a.XML").write_text(XML_V2)
        store = DocumentStore(str(tmp_path / "corpus"))
        with pytest.raises(StoreError, match="duplicate"):
            store.sync(str(src))

    def test_missing_source_dir_rejected(self, tmp_path):
        store = DocumentStore(str(tmp_path / "corpus"))
        with pytest.raises(StoreError, match="not a directory"):
            store.sync(str(tmp_path / "nope"))


class TestManifestReconciliation:
    def test_adopts_bundle_published_without_record(self, tmp_path):
        """The publish-then-record crash window: the bundle landed, the
        manifest write never happened.  Reading heals in memory."""
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        # Simulate the crash: a second bundle with no manifest entry.
        save_document(XML_V2, str(tmp_path / "orphan"))
        manifest = read_manifest(str(tmp_path))
        assert sorted(manifest.documents) == ["doc", "orphan"]
        # Reconciliation never writes: the stored manifest still has one.
        assert sorted(load_manifest(str(tmp_path)).documents) == ["doc"]

    def test_drops_vanished_bundles(self, tmp_path):
        import shutil

        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.add("gone", XML_V2)
        shutil.rmtree(str(tmp_path / "gone"))
        manifest = read_manifest(str(tmp_path))
        assert sorted(manifest.documents) == ["doc"]

    def test_adopts_orphan_retired_directory(self, tmp_path):
        """A crash between the retire-rename and the manifest write
        leaves a retired directory nobody recorded; reading adopts it
        into the garbage list so compact() can still reclaim it."""
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        store.replace("doc", XML_V2)
        retired = retired_names(tmp_path)
        # Drop the retirement record (as if the manifest write was lost).
        manifest = load_manifest(str(tmp_path))
        manifest.retired = []
        from repro.store import write_manifest

        write_manifest(str(tmp_path), manifest)
        healed = read_manifest(str(tmp_path))
        assert [entry["bundle"] for entry in healed.retired] == retired
        assert [entry["name"] for entry in healed.retired] == ["doc"]
        report = store.compact()
        assert report["deleted"] == retired

    def test_corpus_stamp_moves_on_mutation(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("doc", XML_V1)
        stamp = corpus_stamp(str(tmp_path))
        assert stamp is not None
        time.sleep(0.01)
        store.replace("doc", XML_V2)
        assert corpus_stamp(str(tmp_path)) != stamp

    def test_legacy_corpus_bootstraps_at_generation_zero(self, tmp_path):
        # A pre-manifest corpus: bundles only, no manifest.json.
        save_document(XML_V1, str(tmp_path / "doc"))
        manifest = read_manifest(str(tmp_path))
        assert manifest.generation == 0
        assert sorted(manifest.documents) == ["doc"]
        # The first mutation starts the generation counter.
        store = DocumentStore(str(tmp_path))
        store.replace("doc", XML_V2)
        assert store.generation() == 1
