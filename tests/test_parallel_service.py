"""Parallel QueryService: determinism, thread safety, merging, errors.

The load-bearing property is *byte-identical results*: for every shard
count, worker count, executor flavour, and document shape (including the
degenerate bare-root and single-child documents), the parallel service
must return exactly what the serial :class:`Workspace` paths return.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Workspace
from repro.counters import EvalStats
from repro.engine.parallel import (
    QueryService,
    Shard,
    plan_shard_query,
    shard_document,
)
from repro.engine.plan import CompiledQueryCache, ExecutionResult
from repro.engine.registry import StrategyBase, register_strategy, unregister_strategy
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xmark.generator import XMarkGenerator
from strategies import fuzz_corpus, random_core_query, random_document

FIG4_SUBSET = [
    "/site/regions",
    "/site/regions/*/item",
    "//listitem//keyword",
    "/site/people/person[ address and (phone or homepage) ]",
    "//listitem[ .//keyword and .//emph]//parlist",
    "/site[ .//keyword]",
    "/site[ .//keyword ]//keyword",
    "/site[ .//*//* ]//keyword",
]

DEGENERATE_DOCS = {
    "bare": "<r/>",
    "one-child": "<r><a/></r>",
    "chain": "<r><a><a><a><b/></a></a></a></r>",
    "flat": "<r>" + "<a/>" * 7 + "<b/></r>",
}

DEGENERATE_QUERIES = [
    "/r",
    "//r",
    "//a",
    "/r/a",
    "//*",
    "/r[a]",
    "/r[not(a)]",
    "/r[not(c)]//b",
    "//a[not(a)]",
    "/node()",
]


@pytest.fixture(scope="module")
def xmark_workspace():
    ws = Workspace()
    ws.add("xm", XMarkGenerator(scale=0.1, seed=42).tree())
    yield ws
    ws.close()


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def test_shards_cover_document_in_order(self, xmark_workspace):
        index = xmark_workspace.engine("xm").index
        shards = shard_document(index)
        assert shards, "XMark root has top-level children"
        expect_lo = 1
        for ordinal, shard in enumerate(shards):
            assert shard.ordinal == ordinal
            assert shard.lo == expect_lo
            assert shard.offset == shard.lo - 1
            assert len(shard) == shard.hi - shard.lo + 1
            expect_lo = shard.hi
        assert shards[-1].hi == index.tree.n

    def test_grouping_respects_target(self, xmark_workspace):
        index = xmark_workspace.engine("xm").index
        n_children = len(list(index.tree.children(0)))
        for parts in (1, 2, 3, n_children, n_children + 5):
            shards = shard_document(index, parts=parts)
            assert 1 <= len(shards) <= min(parts, n_children)
            assert shards[-1].hi == index.tree.n

    def test_shard_label_index_matches_fresh_build(self, xmark_workspace):
        from repro.index.labels import LabelIndex

        index = xmark_workspace.engine("xm").index
        shard = shard_document(index, parts=3)[1]
        fresh = LabelIndex(shard.index.tree)
        for lab in range(len(index.tree.labels)):
            assert fresh._lists[lab] == shard.index.labels._lists[lab]

    def test_shard_succinct_bp_slice(self, xmark_workspace):
        index = xmark_workspace.engine("xm").index
        shard = shard_document(index, parts=4)[0]
        succ = shard.succinct()
        assert len(succ) == len(shard)
        assert succ.label(0) == "site"
        # Same navigation answers as the pointer slice.
        tree = shard.index.tree
        for v in range(min(len(shard), 50)):
            assert succ.first_child(v) == tree.first_child(v)
            assert succ.next_sibling(v) == tree.next_sibling(v)
        assert shard.succinct() is succ  # built once

    def test_no_shards_for_bare_root(self):
        index = TreeIndex(BinaryTree.from_xml("<r/>"))
        assert shard_document(index) == []

    def test_bad_slice_ranges_rejected(self, xmark_workspace):
        index = xmark_workspace.engine("xm").index
        with pytest.raises(ValueError, match="invalid shard range"):
            index.shard_slice(0, 5)
        with pytest.raises(ValueError, match="top-level"):
            index.shard_slice(2, 3)  # not a child of the root
        with pytest.raises(ValueError, match="parts"):
            shard_document(index, parts=0)


# -- the query rewrite -------------------------------------------------------


class TestShardQueryPlan:
    @pytest.mark.parametrize(
        "query,reason",
        [
            ("//a/following-sibling::b", "following-sibling"),
            ("//a[b/following-sibling::c]", "following-sibling"),
            ("//a/parent::b", "backward"),
            ("//a/..", "backward"),
            ("//a[ancestor::b]", "backward"),
            ("//a[//b]", "absolute path inside a predicate"),
            ("a/b", "relative"),
        ],
    )
    def test_unshardable_queries_are_detected(self, query, reason):
        plan = plan_shard_query(query)
        assert not plan.shardable
        assert reason in plan.reason

    def test_shardable_plan_shapes(self):
        plan = plan_shard_query("//a[b]//c")
        assert plan.shardable
        assert str(plan.root_probe) == "/child::a[child::b]"
        assert not plan.include_root_if_gate
        assert len(plan.paths_always) == 1  # non-root descendant matches
        assert len(plan.paths_gated) == 1  # chains starting at the root
        assert plan.shard_paths(root_gate=False) == plan.paths_always

        single = plan_shard_query("/r")
        assert single.include_root_if_gate
        assert single.shard_paths(root_gate=True) == ()


# -- determinism: parallel == serial ----------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 3, 6])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_xmark_batch_identical_across_shards_and_jobs(
        self, xmark_workspace, shards, jobs
    ):
        serial = xmark_workspace.select_many(FIG4_SUBSET, document="xm")
        with QueryService(
            xmark_workspace, jobs=jobs, shards=shards
        ) as service:
            assert service.select_many(FIG4_SUBSET, document="xm") == serial

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzzed_documents_and_queries_identical(self, seed):
        rng = random.Random(seed)
        ws = Workspace()
        for i in range(3):
            ws.add(f"d{i}", random_document(rng, max_depth=5, max_children=4))
        queries = [
            random_core_query(rng, following=True, backward=(seed == 2))
            for _ in range(25)
        ]
        serial = ws.select_many(queries)
        for shards, jobs in [(1, 2), (2, 2), (4, 3), (None, 2)]:
            with QueryService(ws, jobs=jobs, shards=shards) as service:
                assert serial == service.select_many(queries), (shards, jobs)
        ws.close()

    @pytest.mark.parametrize("doc", sorted(DEGENERATE_DOCS))
    def test_degenerate_documents(self, doc):
        ws = Workspace()
        ws.add("d", DEGENERATE_DOCS[doc])
        serial = ws.select_many(DEGENERATE_QUERIES, document="d")
        for shards in (1, 2, 5):
            with QueryService(ws, jobs=2, shards=shards) as service:
                got = service.select_many(DEGENERATE_QUERIES, document="d")
                assert got == serial, (doc, shards)
        ws.close()

    def test_select_all_and_count_all_match_serial(self, xmark_workspace):
        with QueryService(xmark_workspace, jobs=2) as service:
            assert service.select_all("//keyword") == (
                xmark_workspace.select_all("//keyword")
            )
            assert service.count_all("//keyword") == (
                xmark_workspace.count_all("//keyword")
            )

    def test_execute_merges_to_serial_result(self, xmark_workspace):
        serial = xmark_workspace.execute("//listitem//keyword", "xm")
        with QueryService(xmark_workspace, jobs=2, shards=4) as service:
            merged = service.execute("//listitem//keyword", "xm")
        assert merged.ids == serial.ids
        assert merged.accepted == serial.accepted
        assert merged.stats.selected == serial.stats.selected

    def test_process_pool_identical(self, xmark_workspace):
        pytest.importorskip("multiprocessing")
        serial = xmark_workspace.select_many(FIG4_SUBSET, document="xm")
        with QueryService(
            xmark_workspace, jobs=2, shards=3, executor="process"
        ) as service:
            assert service.select_many(FIG4_SUBSET, document="xm") == serial

    def test_process_pool_spawn_payload_is_picklable(self):
        """Under the spawn start method the whole shard payload (trees,
        label arrays, fused caches) travels by pickle -- prove it."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("no spawn start method on this platform")
        ws = Workspace()
        ws.add("xm", XMarkGenerator(scale=0.02, seed=5).tree())
        queries = ["//keyword", "/site/regions", "/site[.//keyword]//keyword"]
        serial = ws.select_many(queries, document="xm")
        with QueryService(
            ws, jobs=2, shards=2, executor="process", mp_start_method="spawn"
        ) as service:
            assert service.select_many(queries, document="xm") == serial
        ws.close()

    def test_worker_pool_identical(self, xmark_workspace):
        """The persistent pool executor obeys the same identity contract
        (its own behaviours -- warmth, stealing, chaos -- live in
        test_pool.py)."""
        serial = xmark_workspace.select_many(FIG4_SUBSET, document="xm")
        with QueryService(
            xmark_workspace, jobs=2, shards=3, executor="pool"
        ) as service:
            assert service.select_many(FIG4_SUBSET, document="xm") == serial

    def test_workspace_jobs_fast_path(self, xmark_workspace):
        serial = xmark_workspace.select_many(FIG4_SUBSET, document="xm")
        assert (
            xmark_workspace.select_many(FIG4_SUBSET, document="xm", jobs=2)
            == serial
        )
        assert xmark_workspace.select_all("//keyword", jobs=2) == (
            xmark_workspace.select_all("//keyword")
        )

    def test_encoded_documents_identical(self):
        rng = random.Random(7)
        ws = Workspace(encode_attributes=True, encode_text=True)
        for i in range(2):
            ws.add(
                f"d{i}",
                random_document(rng, attributes=True, text=True, max_depth=5),
            )
        queries = [
            random_core_query(rng, attributes=True, text=True)
            for _ in range(20)
        ] + ["//*", "//*/@id", "//node()", "//text()"]
        serial = ws.select_many(queries)
        with QueryService(ws, jobs=2, shards=3) as service:
            assert service.select_many(queries) == serial
        ws.close()


# -- thread safety -----------------------------------------------------------


class TestThreadSafety:
    def test_compiled_cache_single_compilation_under_contention(
        self, monkeypatch
    ):
        """Two threads compiling one key must not duplicate work."""
        from repro.engine import plan as plan_module

        cache = CompiledQueryCache()
        in_compile = threading.Semaphore(0)
        concurrent = []
        real_compile = plan_module.compile_xpath

        def slow_compile(source, wildcard_labels=None):
            concurrent.append(threading.get_ident())
            in_compile.release()
            # Give every other thread a chance to pile onto the key.
            threading.Event().wait(0.02)
            return real_compile(source, wildcard_labels=wildcard_labels)

        monkeypatch.setattr(plan_module, "compile_xpath", slow_compile)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = []

        def worker():
            barrier.wait()
            results.append(cache.get("//a//b[c]"))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.compilations == 1
        assert cache.hits == n_threads - 1
        assert len(cache) == 1
        assert len(set(id(a) for a in results)) == 1  # one shared automaton
        assert len(concurrent) == 1  # the compiler ran exactly once

    def test_engine_plan_cache_safe_under_concurrent_prepare(self):
        ws = Workspace()
        ws.add("d", "<r>" + "<a><b/></a>" * 5 + "</r>")
        engine = ws.engine("d")
        queries = ["//a", "//b", "//a/b", "/r/a", "//a[b]", "/r[a]//b"]
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        plans = [[] for _ in range(n_threads)]

        def worker(slot):
            barrier.wait()
            for q in queries:
                plans[slot].append(engine.prepare(q))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for slot in range(1, n_threads):
            assert plans[slot] == plans[0]  # identical plan objects

    def test_same_plan_executions_are_serialized(self):
        """Two batch queries can rewrite to one shard path and land on
        one PreparedQuery; its warmed tables mutate during a run, so
        plan.execute() must never interleave on one plan."""
        import time

        running = []
        overlaps = []

        @register_strategy
        class SlowStrategy(StrategyBase):
            """Records overlapping executions of the same plan."""

            name = "slow-test"
            fallback = "optimized"
            needs_asta = True

            def execute(self, plan, index, stats):
                if running:
                    overlaps.append(plan.query)
                running.append(plan.query)
                time.sleep(0.005)
                running.pop()
                from repro.engine.optimized import evaluate

                return evaluate(plan.asta, index, stats)

        try:
            ws = Workspace(strategy="slow-test")
            ws.add("d", "<r>" + "<a><b/></a>" * 4 + "</r>")
            plan = ws.engine("d").prepare("//a/b")
            n_threads = 6
            barrier = threading.Barrier(n_threads)
            results = []

            def worker():
                barrier.wait()
                results.append(list(plan.execute().ids))

            threads = [
                threading.Thread(target=worker) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert overlaps == []  # never two executions inside one plan
            assert all(ids == results[0] for ids in results)
            ws.close()
        finally:
            unregister_strategy("slow-test")

    def test_coinciding_shard_rewrites_stay_correct(self, xmark_workspace):
        """Q11/Q12/Q15 rewrite to the same per-shard '//keyword' path;
        fanning them out together must still match serial exactly."""
        batch = [
            "/site//keyword",
            "/site[ .//keyword ]//keyword",
            "/site[ .//*//* ]//keyword",
        ]
        serial = xmark_workspace.select_many(batch, document="xm")
        for _ in range(5):
            with QueryService(xmark_workspace, jobs=3, shards=4) as service:
                assert service.select_many(batch, document="xm") == serial

    def test_non_parallel_safe_strategy_runs_serially(self, xmark_workspace):
        calls = []

        @register_strategy
        class StatefulStrategy(StrategyBase):
            """Keeps run state on self: must not be fanned out."""

            name = "stateful-test"
            fallback = "optimized"
            parallel_safe = False

            def supports(self, path):
                return not path.has_backward_axes()

            def execute(self, plan, index, stats):
                calls.append(threading.get_ident())
                from repro.engine.optimized import evaluate

                return evaluate(plan.asta, index, stats)

            @property
            def needs_asta(self):
                return True

        try:
            ws = Workspace(strategy="stateful-test")
            ws.add("xm", XMarkGenerator(scale=0.02, seed=1).tree())
            serial = ws.select_many(["//keyword", "//listitem"], document="xm")
            with QueryService(ws, jobs=3) as service:
                got = service.select_many(
                    ["//keyword", "//listitem"], document="xm"
                )
            assert got == serial
            # Every execution happened on the submitting (main) thread.
            assert set(calls) == {threading.get_ident()}
            ws.close()
        finally:
            unregister_strategy("stateful-test")


# -- result merging and error paths ------------------------------------------


class TestExecutionResultMerge:
    @staticmethod
    def _result(ids, **counters):
        return ExecutionResult(bool(ids), tuple(ids), EvalStats(**counters))

    def test_counters_sum_and_ids_concatenate(self):
        merged = ExecutionResult.merge(
            [
                self._result((0,), visited=2, selected=1, jumps=1),
                self._result((3, 5), visited=7, selected=2, memo_hits=4),
                self._result((), visited=1, index_probes=3),
                self._result((9,), visited=1, selected=1, memo_entries=2),
            ]
        )
        assert merged.ids == (0, 3, 5, 9)
        assert merged.accepted
        assert merged.stats.visited == 11
        assert merged.stats.selected == 4
        assert merged.stats.jumps == 1
        assert merged.stats.memo_hits == 4
        assert merged.stats.memo_entries == 2
        assert merged.stats.index_probes == 3

    def test_empty_merge(self):
        merged = ExecutionResult.merge([])
        assert merged.ids == () and not merged.accepted
        assert merged.stats.snapshot() == EvalStats().snapshot()

    def test_overlapping_ranges_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            ExecutionResult.merge(
                [self._result((1, 5)), self._result((4, 9))]
            )


class TestWorkspaceErrorPaths:
    def test_duplicate_add_rejected(self):
        ws = Workspace()
        ws.add("d", "<r/>")
        with pytest.raises(ValueError, match="already registered"):
            ws.add("d", "<r><a/></r>")
        assert ws.documents() == ["d"]  # failed add left no residue

    def test_unknown_document_in_select_many(self):
        ws = Workspace()
        ws.add("d", "<r/>")
        with pytest.raises(KeyError, match="registered"):
            ws.select_many(["//a"], document="nope")
        with pytest.raises(KeyError, match="registered"):
            ws.select_many(["//a"], document="nope", jobs=2)
        ws.close()

    def test_unknown_document_in_service_execute(self):
        ws = Workspace()
        ws.add("d", "<r/>")
        with QueryService(ws, jobs=2) as service:
            with pytest.raises(KeyError, match="registered"):
                service.execute("//a", "nope")

    def test_empty_batch(self):
        ws = Workspace()
        ws.add("d1", "<r><a/></r>")
        ws.add("d2", "<r><b/></r>")
        assert ws.select_many([], document="d1") == {}
        assert ws.select_many([]) == {"d1": {}, "d2": {}}
        assert ws.select_many([], document="d1", jobs=2) == {}
        assert ws.select_many([], jobs=2) == {"d1": {}, "d2": {}}
        ws.close()

    def test_remove_unknown_document(self):
        ws = Workspace()
        with pytest.raises(KeyError):
            ws.remove("ghost")

    def test_invalid_executor_rejected(self):
        ws = Workspace()
        with pytest.raises(ValueError, match="executor"):
            QueryService(ws, executor="goroutine")

    def test_remove_and_readd_invalidates_service_shards(self):
        """A re-registered name must never answer from the old shards."""
        ws = Workspace()
        ws.add("d", "<r><a/><a/><a/><a/></r>")
        assert ws.select_many(["//a", "//b"], document="d", jobs=2) == {
            "//a": [1, 2, 3, 4],
            "//b": [],
        }
        ws.remove("d")
        ws.add("d", "<r><b/><b/></r>")
        serial = ws.select_many(["//a", "//b"], document="d")
        assert serial == {"//a": [], "//b": [1, 2]}
        assert ws.select_many(["//a", "//b"], document="d", jobs=2) == serial
        ws.close()

    def test_remove_and_readd_invalidates_process_pool(self):
        ws = Workspace()
        ws.add("d", "<r><a/><a/></r>")
        service = ws.service(jobs=2, executor="process")
        assert service.select_many(["//a"], document="d") == {"//a": [1, 2]}
        ws.remove("d")
        ws.add("d", "<r><b/><a/></r>")
        assert service.select_many(["//a"], document="d") == {"//a": [2]}
        ws.close()

    def test_remove_and_readd_invalidates_worker_pool(self):
        """An in-memory document shipped at pool start forces a rebuild
        on re-registration; the rebuilt pool must see the new content."""
        ws = Workspace()
        ws.add("d", "<r><a/><a/></r>")
        service = ws.service(jobs=2, executor="pool")
        assert service.select_many(["//a"], document="d") == {"//a": [1, 2]}
        ws.remove("d")
        ws.add("d", "<r><b/><a/></r>")
        assert service.select_many(["//a"], document="d") == {"//a": [2]}
        ws.close()

    def test_concurrent_service_calls_share_one_instance(self):
        ws = Workspace()
        ws.add("d", "<r><a/></r>")
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        got = []

        def worker():
            barrier.wait()
            got.append(ws.service(jobs=2))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(id(s) for s in got)) == 1
        ws.close()

    def test_duplicate_queries_collapse_like_serial(self, xmark_workspace):
        batch = ["//keyword", "//keyword", "/site/regions"]
        serial = xmark_workspace.select_many(batch, document="xm")
        assert list(serial) == ["//keyword", "/site/regions"]
        with QueryService(xmark_workspace, jobs=2) as service:
            assert service.select_many(batch, document="xm") == serial
