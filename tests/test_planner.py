"""The cost-based adaptive planner (repro.engine.planner) and the
bounded caches it leans on (plan-cache and fused-cache LRUs)."""

import pytest

from repro.counters import EvalStats
from repro.engine import planner, registry
from repro.engine.api import Engine
from repro.engine.planner import (
    AutoStrategy,
    PlannerState,
    estimate_costs,
    extract_features,
    plan_explain,
)
from repro.engine.workspace import Workspace
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xpath.parser import parse_xpath

XML = (
    "<site>"
    "<a><x/><b/><c><b/><d/></c></a>"
    "<b><a><b/></a></b>"
    "<keyword/>"
    "<listitem><text><keyword><emph/></keyword></text></listitem>"
    "</site>"
)


@pytest.fixture()
def index():
    return TreeIndex(BinaryTree.from_document(parse_xml(XML)))


class TestFeatureExtraction:
    def test_basic_features(self, index):
        f = extract_features(parse_xpath("//a/b[.//c]"), index)
        assert f.n == index.tree.n
        assert f.steps == 2
        assert f.axes == ("descendant", "child")
        assert f.descendant_steps == 1
        assert f.wildcard_steps == 0
        assert f.pred_depth == 1
        assert f.pred_paths == 1
        assert not f.encoded
        # Candidate sizes come straight from the label-index lengths.
        assert f.step_candidates == (
            index.labels.count("a"),
            index.labels.count("b"),
        )
        assert f.pred_candidates == (0, index.labels.count("c"))

    def test_wildcards_and_node_test(self, index):
        f = extract_features(parse_xpath("//*/node()"), index)
        assert f.wildcard_steps == 2
        assert f.step_candidates[1] == index.tree.n
        assert f.step_candidates[0] == index.tree.n  # element-only doc

    def test_encoded_document_flag(self):
        tree = BinaryTree.from_document(
            parse_xml('<r a="1"/>'), encode_attributes=True
        )
        index = TreeIndex(tree)
        f = extract_features(parse_xpath("//r[@a]"), index)
        assert f.encoded
        assert f.pred_candidates == (1,)  # the one @a node

    def test_nested_predicate_depth(self, index):
        f = extract_features(parse_xpath("//a[b[c] and not(d)]"), index)
        assert f.pred_depth == 2
        assert f.pred_paths == 3

    def test_height_from_store_stats_wins(self, index):
        index.doc_stats = {"height": 77}
        assert planner.doc_height(index) == 77

    def test_height_computed_and_cached_without_stats(self, index):
        h = planner.doc_height(index)
        assert h == index.tree.height()
        assert index._planner_height == h


class TestCostModel:
    def test_monotone_in_candidate_volume(self, index):
        rare = estimate_costs(
            parse_xpath("//emph"), extract_features(parse_xpath("//emph"), index)
        )
        common = estimate_costs(
            parse_xpath("//b"), extract_features(parse_xpath("//b"), index)
        )
        for name in ("vectorized", "optimized"):
            assert common[name] >= rare[name]

    def test_monotone_in_predicates(self, index):
        plain_p = parse_xpath("//a")
        pred_p = parse_xpath("//a[.//b]")
        plain = estimate_costs(plain_p, extract_features(plain_p, index))
        pred = estimate_costs(pred_p, extract_features(pred_p, index))
        for name in ("vectorized", "optimized"):
            assert pred[name] >= plain[name]

    def test_monotone_in_steps(self, index):
        one_p, two_p = parse_xpath("//b"), parse_xpath("//b//b")
        one = estimate_costs(one_p, extract_features(one_p, index))
        two = estimate_costs(two_p, extract_features(two_p, index))
        for name in ("vectorized", "optimized"):
            assert two[name] >= one[name]

    def test_hybrid_priced_only_in_its_fragment(self, index):
        chain = parse_xpath("//a//b")
        other = parse_xpath("//a/b")  # child step: outside the chain fragment
        assert "hybrid" in estimate_costs(chain, extract_features(chain, index))
        assert "hybrid" not in estimate_costs(other, extract_features(other, index))

    def test_node_at_a_time_wins_on_tiny_documents(self, index):
        # A handful of candidate elements cannot amortize the fixed
        # vectorized dispatch overhead.
        p = parse_xpath("/site/a")
        costs = estimate_costs(p, extract_features(p, index))
        assert costs["optimized"] < costs["vectorized"]

    def test_vectorized_wins_at_scale(self, xmark_index):
        p = parse_xpath("//listitem//keyword")
        costs = estimate_costs(p, extract_features(p, xmark_index))
        assert costs["vectorized"] < costs["optimized"]

    def test_vectorized_priced_only_in_its_fragment(self, index):
        # A relative top-level path resolves away from 'vectorized'
        # through the fallback chain, so pricing it would desync the
        # choice from the strategy that actually executes.
        p = parse_xpath("a//b")
        costs = estimate_costs(p, extract_features(p, index))
        assert "vectorized" not in costs
        assert "optimized" in costs

    def test_relative_path_plan_chooses_a_resolvable_strategy(self, index):
        # The chosen strategy must execute under its own name so the
        # feedback loop's observations key-match the choice.
        state = PlannerState.plan(parse_xpath("a//b"), index)
        assert state.choice.strategy in state.choice.costs
        assert state.choice.strategy != "vectorized"


class TestPlannerStrategy:
    def test_auto_registered_and_default_listed_first(self):
        assert "auto" in registry.strategy_names()
        assert registry.describe_strategies()[0][0] == "auto"

    def test_prepare_binds_cheapest_strategy(self, xmark_index):
        engine = Engine(xmark_index, strategy="auto")
        plan = engine.prepare("//listitem//keyword")
        state = plan.artifacts["planner"]
        assert plan.strategy.name == "auto"
        assert state.choice.strategy == "vectorized"
        assert state.active.name == "vectorized"

    def test_backward_axes_plan_onto_window(self, index):
        # Backward axes used to bypass the planner (mixed fallback); the
        # window strategy evaluates them natively, so they now plan with
        # ``window`` as the sole candidate and freeze at prepare time.
        engine = Engine(index, strategy="auto")
        plan = engine.prepare("//b/parent::a")
        assert plan.strategy.name == "auto"
        state = plan.artifacts["planner"]
        assert set(state.choice.costs) == {"window"}
        assert state.frozen is True
        assert plan._execute_impl == state.active.execute

    def test_results_match_oracle(self, index):
        auto = Engine(index, strategy="auto")
        naive = Engine(index, strategy="naive")
        for q in ("//a//b", "//a[.//b]", "/site/*", "//c/following-sibling::b"):
            assert auto.select(q) == naive.select(q), q

    def test_plan_explain_surface(self, index):
        engine = Engine(index, strategy="auto")
        verdict = plan_explain(engine, "//a//b")
        assert verdict["strategy"] == "auto"
        assert verdict["planner"]["strategy"] in verdict["planner"]["costs"]
        assert verdict["executes_as"] in registry.strategy_names()
        assert verdict["nodes"] == index.tree.n

    def test_explain_includes_planner_verdict(self, index):
        engine = Engine(index, strategy="auto")
        text = engine.explain("//a//b")
        assert "planner: chose" in text
        assert "candidate costs" in text


class TestFeedbackLoop:
    def _state(self, index, query="//a//b", factor=4.0):
        return PlannerState.plan(parse_xpath(query), index, replan_factor=factor)

    def test_in_band_observation_keeps_choice_and_freezes(self, index):
        state = self._state(index)
        chosen = state.choice.strategy
        stats = EvalStats()
        # An observation that matches the estimate (in model units: node
        # strategies weigh each visited node by NODE_WEIGHT).
        weight = 1.0 if chosen == "vectorized" else planner.NODE_WEIGHT
        stats.visited = max(1, int(state.choice.estimate / weight))
        for _ in range(planner.CONVERGED_RUNS):
            assert state.observe(chosen, stats) is None
        assert state.choice.strategy == chosen
        assert state.frozen

    def test_wild_observation_replans_to_observed_best(self, index):
        state = self._state(index, factor=2.0)
        chosen = state.choice.strategy
        # Fabricate an execution 100x the estimate: far out of band.
        stats = EvalStats()
        stats.visited = int(state.choice.estimate * 100)
        switched = state.observe(chosen, stats)
        assert switched is not None and switched != chosen
        assert state.replans == 1
        assert state.choice.strategy == switched
        assert not state.frozen

    def test_observation_of_inactive_strategy_never_replans(self, index):
        state = self._state(index)
        other = next(
            n for n in state.choice.costs if n != state.choice.strategy
        )
        stats = EvalStats()
        stats.visited = 10**9
        assert state.observe(other, stats) is None

    def test_engine_level_replan_on_forced_misprediction(self, index):
        engine = Engine(index, strategy="auto")
        plan = engine.prepare("//a//b")
        state = plan.artifacts["planner"]
        # Force an absurdly tight band so the first real execution is
        # declared a misprediction and the plan re-prices itself.
        state.choice.costs[state.choice.strategy] = 10**12
        state.choice = planner.PlanChoice(
            state.choice.strategy,
            10**12,
            state.choice.costs,
            state.choice.features,
        )
        before = state.choice.strategy
        result = plan.execute()
        assert list(result.ids) == Engine(index, strategy="naive").select("//a//b")
        assert state.runs == 1
        # The observed cost replaced the inflated estimate.
        assert state.observed[before] < 10**12
        # And later executions still return oracle-identical results.
        assert list(plan.execute().ids) == list(result.ids)

    def test_snapshot_is_json_friendly(self, index):
        import json

        state = self._state(index)
        stats = EvalStats()
        stats.visited = 10
        state.observe(state.choice.strategy, stats)
        json.dumps(state.snapshot())


class TestPlanCacheEviction:
    def test_engine_plan_cache_is_lru_bounded(self, index):
        engine = Engine(index)
        engine.plan_cache_size = 4
        for i in range(10):
            engine.prepare("//a//b" + "/b" * i)
        info = engine.cache_info()["plans"]
        assert info["size"] <= 4
        assert info["evictions"] >= 6
        assert info["misses"] == 10

    def test_reprepared_plan_after_eviction_still_works(self, index):
        engine = Engine(index)
        engine.plan_cache_size = 1
        first = engine.prepare("//a//b")
        engine.prepare("//b")  # evicts the first plan
        again = engine.prepare("//a//b")
        assert again is not first
        assert again.select() == first.select()

    def test_plan_cache_hit_refreshes_recency(self, index):
        engine = Engine(index)
        engine.plan_cache_size = 2
        a = engine.prepare("//a")
        engine.prepare("//b")
        engine.prepare("//a")  # refresh 'a'
        engine.prepare("//c")  # evicts '//b', not '//a'
        assert engine.prepare("//a") is a

    def test_fused_cache_is_lru_bounded(self, index):
        labels = index.labels
        labels.fused_cache_size = 3
        n_labels = len(index.tree.labels)
        import itertools

        for combo in itertools.combinations(range(n_labels), 2):
            labels.fused(list(combo))
        info = labels.cache_info()
        assert info["size"] <= 3
        assert info["evictions"] > 0
        assert info["misses"] > 0

    def test_fused_eviction_is_semantically_transparent(self, index):
        labels = index.labels
        labels.fused_cache_size = 2
        first = labels.fused([0, 1]).lst
        labels.fused([1, 2])
        labels.fused([2, 3])  # [0, 1] evicted by now
        assert labels.fused([0, 1]).lst == first

    def test_fused_cache_hits_counted(self, index):
        labels = index.labels
        base = labels.cache_info()["hits"]
        labels.fused([0, 1])
        labels.fused([0, 1])
        assert labels.cache_info()["hits"] >= base + 1

    def test_fused_cache_safe_under_thread_contention(self, index):
        # Pool threads of a QueryService drive one shard engine's index
        # concurrently; the mutating LRU must never KeyError or corrupt.
        import itertools
        import threading

        labels = index.labels
        labels.fused_cache_size = 4
        combos = list(itertools.combinations(range(len(index.tree.labels)), 2))
        errors = []

        def hammer(seed):
            try:
                for combo in combos[seed:] + combos[:seed]:
                    for _ in range(20):
                        labels.fused(list(combo))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert labels.cache_info()["size"] <= 4

    def test_label_index_with_lock_still_pickles(self, index):
        # Process-pool payloads ship shard label indexes by pickle; the
        # cache lock must not travel.
        import pickle

        index.labels.fused([0, 1])
        clone = pickle.loads(pickle.dumps(index.labels))
        assert clone.fused([0, 1]).lst == index.labels.fused([0, 1]).lst
        clone.cache_info()  # fresh lock works


class TestWorkspaceAndParallelPlanning:
    def test_workspace_cache_info_shape(self):
        ws = Workspace(strategy="auto")
        ws.add("d", XML)
        ws.select("//a//b", "d")
        info = ws.cache_info()
        assert "compiled" in info
        assert set(info["documents"]) == {"d"}
        assert info["documents"]["d"]["plans"]["size"] >= 1

    def test_auto_strategy_parallel_identity(self):
        ws = Workspace(strategy="auto")
        ws.add("d", "<r>" + "<a><b/><c><b/></c></a>" * 6 + "</r>")
        queries = ["//a//b", "//a[b]", "/r/a/c", "//b"]
        serial = ws.select_many(queries, document="d")
        parallel = ws.select_many(queries, document="d", jobs=2, shards=3)
        assert parallel == serial
        ws.close()

    def test_per_shard_plan_report(self):
        ws = Workspace(strategy="auto")
        ws.add("d", "<r>" + "<a><b/><c><b/></c></a>" * 6 + "</r>")
        service = ws.service(jobs=2, shards=3)
        report = service.plan_report("//a//b", "d")
        assert report["shardable"]
        assert len(report["shards"]) == 3
        for shard in report["shards"]:
            for entry in shard["paths"]:
                assert entry["strategy"] == "auto"
                assert entry["executes_as"] in registry.strategy_names()
        ws.close()

    def test_unshardable_plan_report(self):
        ws = Workspace(strategy="auto")
        ws.add("d", "<r>" + "<a><b/></a>" * 4 + "</r>")
        service = ws.service(jobs=2)
        report = service.plan_report("//a/following-sibling::a", "d")
        assert not report["shardable"]
        assert report["whole_document"]["strategy"] == "auto"
        ws.close()


class TestReplanFactorConfiguration:
    def test_replan_factor_env_override(self, monkeypatch, index):
        strategy = AutoStrategy()
        strategy.replan_factor = 9.0
        engine = Engine(index, strategy="naive")  # any engine works
        plan = engine.prepare("//a//b", strategy="naive")
        # Bind via the strategy's prepare hook directly.
        strategy.prepare(plan)
        assert plan.artifacts["planner"].replan_factor == 9.0
