"""Persistent shared-memory worker pool: identity, warmth, chaos, teardown.

The pool executor's contract mirrors every other executor: results
byte-identical to serial execution -- while its *point* is what it keeps
across batches (warm engines, compiled paths, worker processes) and what
it survives (killed workers, store generation swaps, injected slow
reads).  Each of those is pinned here.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import Workspace, faults
from repro.engine.parallel import QueryService
from repro.engine.pool import (
    CHUNK_MIN_COST,
    PoolClosedError,
    PoolTask,
    WorkerPool,
    plan_chunks,
)
from repro.store import DocumentStore
from repro.xmark.generator import XMarkGenerator

FIG4_SUBSET = [
    "/site/regions",
    "/site/regions/*/item",
    "//listitem//keyword",
    "/site/people/person[ address and (phone or homepage) ]",
    "//listitem[ .//keyword and .//emph]//parlist",
    "/site[ .//keyword]",
    "/site[ .//keyword ]//keyword",
    "/site[ .//*//* ]//keyword",
]

DEGENERATE_DOCS = {
    "bare": "<r/>",
    "one-child": "<r><a/></r>",
    "chain": "<r><a><a><a><b/></a></a></a></r>",
    "flat": "<r>" + "<a/>" * 7 + "<b/></r>",
}

DEGENERATE_QUERIES = [
    "/r",
    "//r",
    "//a",
    "/r/a",
    "//*",
    "/r[a]",
    "/r[not(a)]",
    "/r[not(c)]//b",
    "//a[not(a)]",
    "/node()",
]


def _pid_alive(pid: int) -> bool:
    """Is ``pid`` a live (non-zombie) process?"""
    try:
        with open(f"/proc/{pid}/stat", "r") as fh:
            return fh.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


def _wait_pids_dead(pids, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        # Reap any finished-but-unjoined children (a terminated daemon
        # process stays a zombie until someone polls it).
        multiprocessing.active_children()
        if not any(_pid_alive(p) for p in pids):
            return True
        time.sleep(0.05)
    return False


@pytest.fixture(scope="module")
def xmark_workspace():
    ws = Workspace()
    ws.add("xm", XMarkGenerator(scale=0.1, seed=42).tree())
    yield ws
    ws.close()


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("pool-store")
    store = DocumentStore(str(root))
    store.add("sa", XMarkGenerator(scale=0.05, seed=3).tree())
    store.add("sb", XMarkGenerator(scale=0.02, seed=4).tree())
    return str(root)


# -- chunk planning ----------------------------------------------------------


def _task(doc: str, cost: int) -> PoolTask:
    return PoolTask(doc, ("static", 0), None, 0, ("//a",), cost=cost)


class TestPlanChunks:
    def test_empty(self):
        assert plan_chunks([], 4) == []

    def test_preserves_order_and_covers_all(self):
        tasks = [_task("d", 10) for _ in range(37)]
        chunks = plan_chunks(tasks, 4)
        assert [t for c in chunks for t in c] == tasks

    def test_never_spans_documents(self):
        tasks = [_task("a", 1), _task("a", 1), _task("b", 1), _task("a", 1)]
        for chunk in plan_chunks(tasks, 2):
            assert len({t.doc for t in chunk}) == 1

    def test_big_task_travels_alone(self):
        tasks = [
            _task("d", 5),
            _task("d", 10 * CHUNK_MIN_COST),
            _task("d", 5),
        ]
        chunks = plan_chunks(tasks, 2)
        solo = [c for c in chunks if c[0].cost >= CHUNK_MIN_COST]
        assert len(solo) == 1 and len(solo[0]) == 1

    def test_plentiful_batch_gives_scheduling_slack(self):
        # Total cost >> min_cost: the adaptive budget must produce at
        # least one chunk of freedom per worker, not one giant message.
        tasks = [_task("d", CHUNK_MIN_COST) for _ in range(32)]
        chunks = plan_chunks(tasks, 4)
        assert len(chunks) >= 4

    def test_tiny_batch_coalesces(self):
        tasks = [_task("d", 1) for _ in range(20)]
        assert len(plan_chunks(tasks, 4)) == 1


# -- identity ----------------------------------------------------------------


class TestPoolIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_fig4_identical_to_serial(self, xmark_workspace, jobs):
        ws = xmark_workspace
        serial = ws.select_many(FIG4_SUBSET, "xm")
        with QueryService(ws, jobs=jobs, executor="pool") as service:
            assert service.select_many(FIG4_SUBSET, "xm") == serial

    def test_degenerate_documents(self):
        ws = Workspace()
        for name, xml in DEGENERATE_DOCS.items():
            ws.add(name, xml)
        serial = {
            name: ws.select_many(DEGENERATE_QUERIES, name)
            for name in DEGENERATE_DOCS
        }
        with QueryService(ws, jobs=2, executor="pool") as service:
            got = service.select_many(DEGENERATE_QUERIES)
        assert got == serial
        ws.close()

    def test_store_backed_documents(self, store_dir):
        ws = Workspace()
        ws.open_store(store_dir)
        serial = {
            name: ws.select_many(FIG4_SUBSET, name) for name in ("sa", "sb")
        }
        with QueryService(ws, jobs=2, executor="pool") as service:
            for name in ("sa", "sb"):
                assert service.select_many(FIG4_SUBSET, name) == serial[name]
        ws.close()

    def test_execute_merges_stats(self, xmark_workspace):
        ws = xmark_workspace
        with QueryService(ws, jobs=2, executor="pool") as service:
            result = service.execute("//listitem//keyword", "xm")
        reference = ws.engine("xm").execute("//listitem//keyword")
        assert list(result.ids) == list(reference.ids)
        assert result.stats.snapshot()  # counters did travel back

    def test_workspace_select_many_routes_pool(self, xmark_workspace):
        ws = xmark_workspace
        serial = ws.select_many(FIG4_SUBSET, "xm")
        assert (
            ws.select_many(FIG4_SUBSET, "xm", jobs=1, executor="pool")
            == serial
        )


# -- warmth (the point of persistence) ---------------------------------------


class TestWarmth:
    def test_second_batch_warm_same_pool_no_reparse(self, xmark_workspace):
        ws = xmark_workspace
        with QueryService(ws, jobs=1, executor="pool") as service:
            service.select_many(FIG4_SUBSET, "xm")
            pool = service._pool
            assert pool is not None
            first = service.pool_stats()
            service.select_many(FIG4_SUBSET, "xm")
            # No per-batch pool rebuild: the same WorkerPool object (and
            # hence the same worker processes) served both batches.
            assert service._pool is pool
            second = service.pool_stats()
        # Every second-batch subtask hit warm engines *and* warm
        # compiled paths (jobs=1: one worker sees every task).
        new = second["warm_hits"] - first["warm_hits"]
        cold = second["cold_misses"] - first["cold_misses"]
        assert new > 0 and cold == 0
        assert second["warm_hit_rate"] > 0

    def test_pool_survives_across_select_many_calls(self, store_dir):
        ws = Workspace()
        ws.open_store(store_dir)
        with QueryService(ws, jobs=2, executor="pool") as service:
            pids_before = service.ensure_pool().worker_pids()
            for _ in range(3):
                service.select_many(FIG4_SUBSET, "sa")
            assert service.ensure_pool().worker_pids() == pids_before
        ws.close()


# -- chaos -------------------------------------------------------------------


class TestChaos:
    def test_worker_killed_mid_task_respawns_and_retries(
        self, xmark_workspace
    ):
        ws = xmark_workspace
        serial = ws.select_many(FIG4_SUBSET, "xm")
        plan = faults.FaultPlan()
        # Each subtask on this document stalls inside the worker, so the
        # kill below lands mid-task deterministically enough.
        plan.add(
            "pool.task", "slow_read", delay_s=0.1, match={"document": "xm"}
        )
        with faults.active(plan):
            with QueryService(ws, jobs=2, executor="pool") as service:
                pool = service.ensure_pool()
                pids = pool.worker_pids()
                got: dict = {}
                runner = threading.Thread(
                    target=lambda: got.update(
                        service.select_many(FIG4_SUBSET, "xm")
                    )
                )
                runner.start()
                time.sleep(0.3)
                os.kill(pids[0], signal.SIGKILL)
                runner.join(timeout=120)
                assert not runner.is_alive(), "batch hung after worker death"
                stats = pool.stats()
        assert got == serial
        assert stats["respawns"] >= 1
        assert stats["retries"] >= 1
        assert stats["failures"] == 0

    def test_store_replace_and_compact_under_live_pool(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.add("mut", XMarkGenerator(scale=0.05, seed=5).tree())
        store.add("stable", XMarkGenerator(scale=0.02, seed=6).tree())
        queries = FIG4_SUBSET[:4]
        ws = Workspace()
        ws.open_store(str(tmp_path))
        with QueryService(ws, jobs=2, executor="pool") as service:
            before_stable = service.select_many(queries, "stable")
            before_mut = service.select_many(queries, "mut")

            new_tree = XMarkGenerator(scale=0.05, seed=9).tree()
            reference = Workspace()
            reference.add("mut", new_tree)
            after_serial = reference.select_many(queries, "mut")
            assert after_serial != before_mut, "test needs distinct content"

            store.replace("mut", new_tree)
            old = ws.swap_stored("mut", store.open("mut"))
            if old is not None:
                old.close()
            store.compact()

            # The version bump travels with the next tasks: no worker
            # may answer from the retired generation.
            assert service.select_many(queries, "mut") == after_serial
            # The untouched document kept its warm caches.
            warm_before = service.pool_stats()["warm_hits"]
            assert service.select_many(queries, "stable") == before_stable
            assert service.pool_stats()["warm_hits"] > warm_before
            reference.close()
        ws.close()

    def test_slow_read_inside_worker_is_correct(self, store_dir):
        ws = Workspace()
        ws.open_store(store_dir)
        serial = ws.select_many(FIG4_SUBSET, "sb")
        plan = faults.FaultPlan()
        plan.add("store.load_array", "slow_read", delay_s=0.005)
        with faults.active(plan):
            # Workers fork with the plan active and re-check the site
            # when they reopen the bundle's arrays themselves.
            with QueryService(ws, jobs=2, executor="pool") as service:
                assert service.select_many(FIG4_SUBSET, "sb") == serial
        ws.close()


# -- teardown (no orphaned workers) ------------------------------------------


class TestTeardown:
    def test_close_is_idempotent_and_rejects_new_work(self):
        pool = WorkerPool(workers=1, strategy="naive")
        pids = pool.worker_pids()
        pool.close()
        pool.close()
        assert _wait_pids_dead(pids)
        with pytest.raises(PoolClosedError):
            pool.submit_many([_task("d", 1)])

    def test_workspace_close_kills_workers(self, store_dir):
        ws = Workspace()
        ws.open_store(store_dir)
        service = ws.service(jobs=2, executor="pool")
        pids = service.ensure_pool().worker_pids()
        assert pids and all(_pid_alive(p) for p in pids)
        ws.close()
        assert _wait_pids_dead(pids)

    def test_garbage_collected_pool_reaps_workers(self):
        pool = WorkerPool(workers=2, strategy="naive")
        pids = pool.worker_pids()
        assert all(_pid_alive(p) for p in pids)
        del pool
        gc.collect()
        assert _wait_pids_dead(pids)

    def test_daemon_stop_kills_workers(self, store_dir):
        daemon_mod = pytest.importorskip("repro.serve.daemon")
        daemon = daemon_mod.QueryDaemon(store_dir, pool_workers=2)
        with daemon_mod.DaemonThread(daemon) as handle:
            pids = daemon._pool_service.ensure_pool().worker_pids()
            assert pids and all(_pid_alive(p) for p in pids)
            assert handle.port > 0
        assert _wait_pids_dead(pids)


# -- validation ---------------------------------------------------------------


class TestValidation:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0, strategy="naive")

    def test_pool_executor_accepted_by_service(self, xmark_workspace):
        service = QueryService(xmark_workspace, jobs=1, executor="pool")
        service.close()  # never built a pool: close is a no-op
