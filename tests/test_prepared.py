"""Prepared queries: reuse, zero re-work on execute, immutable stats."""

import pytest

from repro import Engine
from repro.engine import api as api_module
from repro.engine.plan import ExecutionResult

XML = "<r><a><x/><b/><c><b/></c></a><b/></r>"


class TestPlanReuse:
    def test_prepare_is_cached_per_query_and_strategy(self):
        engine = Engine(XML)
        assert engine.prepare("//a//b") is engine.prepare("//a//b")
        assert engine.prepare("//a//b") is not engine.prepare(
            "//a//b", strategy="naive"
        )

    def test_execute_matches_select(self):
        engine = Engine(XML)
        plan = engine.prepare("//a//b")
        assert list(plan.execute().ids) == engine.select("//a//b") == [3, 5]

    def test_plan_select_convenience(self):
        assert Engine(XML).prepare("//a//b").select() == [3, 5]

    def test_execute_does_zero_parsing_and_compilation(self, monkeypatch):
        engine = Engine(XML)
        plan = engine.prepare("//a//b")
        plan.execute()  # warm any lazy artifact
        compilations = engine.cache.compilations

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("re-parsed/re-compiled on execute()")

        monkeypatch.setattr(api_module, "parse_xpath", boom)
        monkeypatch.setattr("repro.engine.plan.compile_xpath", boom)
        monkeypatch.setattr("repro.engine.mixed.compile_xpath", boom)
        result = plan.execute()
        assert list(result.ids) == [3, 5]
        assert engine.cache.compilations == compilations

    def test_prepared_backward_query_compiles_prefix_once(self):
        engine = Engine(XML)
        plan = engine.prepare("//a/b/parent::a")
        assert plan.strategy.name == "mixed"
        first = plan.execute()
        compilations = engine.cache.compilations
        second = plan.execute()
        assert list(first.ids) == list(second.ids) == [1]
        assert engine.cache.compilations == compilations

    def test_prepared_deterministic_reuses_tdsta(self):
        engine = Engine(XML, strategy="deterministic")
        plan = engine.prepare("//a//b")
        assert plan.artifacts["tdsta"] is not None
        assert list(plan.execute().ids) == [3, 5]

    def test_compiled_cache_shared_between_plan_and_compile(self):
        engine = Engine(XML)
        plan = engine.prepare("//a//b")
        assert engine.compile("//a//b") is plan.asta
        assert engine.cache.compilations == 1


class TestExecutionResult:
    def test_result_is_immutable(self):
        result = Engine(XML).prepare("//a//b").execute()
        with pytest.raises(AttributeError):
            result.ids = ()

    def test_each_execution_gets_fresh_stats(self):
        engine = Engine(XML)
        plan = engine.prepare("//a//b")
        r1, r2 = plan.execute(), plan.execute()
        assert r1.stats is not r2.stats
        assert r1.stats.selected == r2.stats.selected == 2
        assert r1.stats.visited == r2.stats.visited
        assert r1.stats.jumps == r2.stats.jumps

    def test_prepared_plan_keeps_warmed_memo_tables(self):
        engine = Engine(XML)
        plan = engine.prepare("//a//b")
        r1, r2 = plan.execute(), plan.execute()
        # The first execution fills the interned tables; the second runs
        # entirely against them (same answers, zero new insertions).
        assert list(r1.ids) == list(r2.ids)
        assert r1.stats.memo_entries > 0
        assert r2.stats.memo_entries == 0
        assert r2.stats.memo_hits >= r1.stats.memo_hits

    def test_no_last_stats_race_between_plans(self):
        engine = Engine(XML)
        many = engine.prepare("//b").execute()
        few = engine.prepare("//a/c/b").execute()
        # Results keep their own counters regardless of later executions.
        assert many.stats.selected == 3
        assert few.stats.selected == 1

    def test_result_sequence_protocol(self):
        result = Engine(XML).prepare("//a//b").execute()
        assert len(result) == 2
        assert list(result) == [3, 5]
        assert result.nodes == [3, 5]
        assert isinstance(result, ExecutionResult)


class TestPlanExplain:
    def test_explain_names_resolved_strategy(self):
        engine = Engine(XML)
        assert "strategy: optimized" in engine.prepare("//a//b").explain()
        assert "strategy: mixed" in engine.prepare("//b/parent::a").explain()

    def test_engine_explain_delegates_to_plan(self):
        engine = Engine(XML)
        assert engine.explain("//a//b") == engine.prepare("//a//b").explain()
