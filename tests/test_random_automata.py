"""Property tests over *random* deterministic selecting tree automata.

The fixed examples of the paper are necessary but not sufficient; these
strategies generate arbitrary complete TDSTAs/BDSTAs over a small label
alphabet and check the Section 3 machinery wholesale:

- minimization preserves language and selection and is idempotent;
- the unique deterministic run agrees with the all-runs oracle;
- ``topdown_jump`` is sound (run values correct, rejection detected) and
  complete for selection (every selected node is in its domain);
- ``bottom_up`` / ``bottom_up_reduce`` / ``bottomup_jump`` agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.bottomup import bottom_up, bottom_up_reduce, bottomup_jump, selected_by_run
from repro.automata.labelset import LabelSet
from repro.automata.minimize import (
    bdsta_equivalent,
    minimize_bdsta,
    minimize_tdsta,
    tdsta_equivalent,
)
from repro.automata.sta import STA, Transition
from repro.automata.topdown import topdown_jump
from repro.index.jumping import TreeIndex

from strategies import binary_trees

LABELS = ("a", "b", "c")
ATOMS = [LabelSet.of("a"), LabelSet.of("b"), LabelSet.of("c"), LabelSet.not_of(*LABELS)]


@st.composite
def tdstas(draw, max_states: int = 3):
    """Random complete top-down deterministic STAs."""
    n = draw(st.integers(1, max_states))
    states = [f"q{i}" for i in range(n)]
    transitions = []
    for q in states:
        for atom in ATOMS:
            q1 = draw(st.sampled_from(states))
            q2 = draw(st.sampled_from(states))
            transitions.append(Transition(q, atom, q1, q2))
    top = [states[0]]
    bottom = draw(st.sets(st.sampled_from(states), min_size=1))
    selecting = {}
    for q in states:
        sel = draw(st.sets(st.sampled_from(LABELS), max_size=2))
        if sel:
            selecting[q] = LabelSet(sel)
    return STA(states, top, bottom, selecting, transitions)


@st.composite
def bdstas(draw, max_states: int = 3):
    """Random complete bottom-up deterministic STAs."""
    n = draw(st.integers(1, max_states))
    states = [f"q{i}" for i in range(n)]
    transitions = []
    for q1 in states:
        for q2 in states:
            for atom in ATOMS:
                q = draw(st.sampled_from(states))
                transitions.append(Transition(q, atom, q1, q2))
    bottom = [states[0]]
    top = draw(st.sets(st.sampled_from(states), min_size=1))
    selecting = {}
    for q in states:
        sel = draw(st.sets(st.sampled_from(LABELS), max_size=2))
        if sel:
            selecting[q] = LabelSet(sel)
    return STA(states, top, bottom, selecting, transitions)


class TestRandomTDSTA:
    @given(tdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_run_agrees_with_oracle(self, sta, tree):
        run = sta.deterministic_topdown_run(tree)
        accepted = sta.accepts(tree)
        assert (run is not None) == accepted
        if run is not None:
            selected = [
                v for v in range(tree.n) if sta.selects(run[v], tree.label(v))
            ]
            assert selected == sta.selected_nodes(tree)

    @given(tdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_minimization_preserves_semantics(self, sta, tree):
        mini = minimize_tdsta(sta)
        assert mini.accepts(tree) == sta.accepts(tree)
        assert mini.selected_nodes(tree) == sta.selected_nodes(tree)
        assert len(mini.states) <= len(sta.states) + 1  # +1: added sink

    @given(tdstas())
    @settings(max_examples=40, deadline=None)
    def test_minimization_idempotent_and_equivalent(self, sta):
        mini = minimize_tdsta(sta)
        again = minimize_tdsta(mini)
        assert len(again.states) == len(mini.states)
        assert tdsta_equivalent(mini, sta)

    @given(tdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=80, deadline=None)
    def test_topdown_jump_sound_and_selection_complete(self, sta, tree):
        mini = minimize_tdsta(sta)
        run = topdown_jump(mini, TreeIndex(tree))
        full = mini.deterministic_topdown_run(tree)
        if full is None:
            assert run == {}
            return
        for v, q in run.items():
            assert full[v] == q
        # Every selected node must appear in the partial run's domain.
        for v in mini.selected_nodes(tree):
            assert v in run
            assert mini.selects(run[v], tree.label(v))

    @given(tdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_jump_never_accepts_rejected_trees(self, sta, tree):
        mini = minimize_tdsta(sta)
        run = topdown_jump(mini, TreeIndex(tree))
        if not mini.accepts(tree):
            assert run == {}


class TestRandomBDSTA:
    @given(bdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_run_agrees_with_oracle(self, sta, tree):
        run = bottom_up(sta, tree)
        assert (run is not None) == sta.accepts(tree)
        if run is not None:
            assert selected_by_run(sta, tree, run) == sta.selected_nodes(tree)

    @given(bdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_reduce_equals_sweep(self, sta, tree):
        assert bottom_up_reduce(sta, tree) == bottom_up(sta, tree)

    @given(bdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_jumping_values_match(self, sta, tree):
        full = bottom_up(sta, tree)
        partial = bottomup_jump(sta, TreeIndex(tree))
        assert (full is None) == (partial is None)
        if full is not None:
            for v, q in partial.items():
                assert full[v] == q

    @given(bdstas(), binary_trees(max_depth=3, max_children=3))
    @settings(max_examples=40, deadline=None)
    def test_minimization_preserves_semantics(self, sta, tree):
        mini = minimize_bdsta(sta)
        assert mini.accepts(tree) == sta.accepts(tree)
        assert mini.selected_nodes(tree) == sta.selected_nodes(tree)

    @given(bdstas())
    @settings(max_examples=25, deadline=None)
    def test_minimization_self_equivalent(self, sta):
        mini = minimize_bdsta(sta)
        assert bdsta_equivalent(mini, sta)
