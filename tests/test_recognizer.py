"""Hat-encoding STA <-> recognizer (Appendix A.1, Lemmas A.1-A.3)."""

from hypothesis import given, settings

from repro.automata.examples import sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.recognizer import (
    decode_recognizer,
    encode_recognizer,
    hat,
    is_hatted,
    unhat,
)
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument, XMLNode

from strategies import binary_trees


def hatted_variant(tree: BinaryTree, marked: set) -> BinaryTree:
    """Copy of ``tree`` with the labels of ``marked`` nodes hatted."""

    def rebuild(v: int) -> XMLNode:
        label = tree.label(v)
        node = XMLNode(hat(label) if v in marked else label)
        for c in tree.children(v):
            node.append(rebuild(c))
        return node

    return BinaryTree.from_document(XMLDocument(rebuild(0)))


class TestHatHelpers:
    def test_hat_roundtrip(self):
        assert unhat(hat("a")) == "a"
        assert is_hatted(hat("a"))
        assert not is_hatted("a")
        assert unhat("a") == "a"


class TestEncoding:
    def test_encoder_produces_pure_recognizer(self):
        rec = encode_recognizer(sta_desc_a_desc_b())
        assert rec.selecting == {}

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=50)
    def test_lemma_a1_direction_1(self, tree):
        """t ∈ L(A) with selection A(t) => hatted variant ∈ L(Â)."""
        sta = sta_desc_a_desc_b()
        rec = encode_recognizer(sta)
        if not sta.accepts(tree):
            return
        selected = set(sta.selected_nodes(tree))
        assert rec.accepts(hatted_variant(tree, selected))

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=50)
    def test_wrongly_hatted_trees_rejected(self, tree):
        """Hatting a non-selected node must leave L(Â)."""
        sta = sta_desc_a_desc_b()
        rec = encode_recognizer(sta)
        selected = set(sta.selected_nodes(tree))
        for v in range(tree.n):
            if v in selected:
                continue
            variant = hatted_variant(tree, selected | {v})
            assert not rec.accepts(variant)
            break  # one witness per example keeps the test fast

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=50)
    def test_unhatted_tree_acceptance_tracks_selection_freedom(self, tree):
        """A tree with NO hats is accepted by Â iff A has an accepting run
        selecting nothing -- for Example 2.1 that is: accepted and no b
        under an a (since its unique run must select every such b)."""
        sta = sta_desc_a_desc_b()
        rec = encode_recognizer(sta)
        expected = sta.accepts(tree) and not sta.selected_nodes(tree)
        assert rec.accepts(tree) == expected


class TestDecoding:
    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=50)
    def test_decode_inverts_encode(self, tree):
        sta = sta_desc_a_desc_b()
        back = decode_recognizer(encode_recognizer(sta))
        assert back.selected_nodes(tree) == sta.selected_nodes(tree)
        assert back.accepts(tree) == sta.accepts(tree)

    def test_decode_recognizer_without_hats_is_identity_like(self):
        rec = sta_dtd_root_a()
        back = decode_recognizer(rec)
        assert back.selecting == {}
        assert len(back.transitions) == len(rec.transitions)


class TestSelectingUnambiguity:
    """Lemma A.2: Â is selecting-unambiguous (empirically checked)."""

    def test_no_violations_on_sample_trees(self):
        from repro.automata.recognizer import selecting_unambiguous_violations

        rec = encode_recognizer(sta_desc_a_desc_b())
        trees = [
            BinaryTree.from_spec(spec)
            for spec in (
                ("a", "b"),
                ("r", ("a", "b", "c")),
                ("a", ("b", "b")),
                "c",
            )
        ]
        assert selecting_unambiguous_violations(rec, trees) == []

    @given(binary_trees(labels=("a", "b", "c"), max_depth=3, max_children=3))
    @settings(max_examples=30, deadline=None)
    def test_no_violations_random(self, tree):
        from repro.automata.recognizer import selecting_unambiguous_violations

        rec = encode_recognizer(sta_desc_a_desc_b())
        assert selecting_unambiguous_violations(rec, [tree]) == []
