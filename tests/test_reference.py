"""The set-based reference evaluator on hand-checked documents."""

import pytest

from repro.tree.binary import BinaryTree
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import eval_path_from, evaluate_reference


@pytest.fixture(scope="module")
def tree():
    #  0 site
    #    1 a
    #      2 x    3 b    4 c
    #                      5 b
    #    6 b
    #      7 a
    #        8 b
    return BinaryTree.from_xml(
        "<site><a><x/><b/><c><b/></c></a><b><a><b/></a></b></site>"
    )


def q(tree, text):
    return evaluate_reference(tree, parse_xpath(text))


class TestAxes:
    def test_root_match(self, tree):
        assert q(tree, "/site") == [0]
        assert q(tree, "/nope") == []

    def test_child_chain(self, tree):
        assert q(tree, "/site/a") == [1]
        assert q(tree, "/site/a/b") == [3]

    def test_descendant_from_root_includes_root(self, tree):
        assert q(tree, "//site") == [0]

    def test_descendant(self, tree):
        assert q(tree, "//b") == [3, 5, 6, 8]
        assert q(tree, "//a//b") == [3, 5, 8]

    def test_descendant_under_child(self, tree):
        assert q(tree, "/site/a//b") == [3, 5]

    def test_wildcard(self, tree):
        assert q(tree, "/site/*") == [1, 6]

    def test_following_sibling(self, tree):
        assert q(tree, "/site/a/x/following-sibling::b") == [3]
        assert q(tree, "/site/a/x/following-sibling::*") == [3, 4]

    def test_results_sorted_and_unique(self, tree):
        # both a's contain b's; b id 8 reachable through two a-paths
        assert q(tree, "//a//b//a//b") == []
        assert q(tree, "//b") == sorted(set(q(tree, "//b")))


class TestPredicates:
    def test_child_existence(self, tree):
        assert q(tree, "//a[x]") == [1]
        assert q(tree, "//a[b]") == [1, 7]

    def test_descendant_existence(self, tree):
        assert q(tree, "//a[.//b]") == [1, 7]

    def test_and_or(self, tree):
        assert q(tree, "//a[x and b]") == [1]
        assert q(tree, "//a[x or zz]") == [1]

    def test_not(self, tree):
        assert q(tree, "//a[not(x)]") == [7]

    def test_nested_path_predicate(self, tree):
        assert q(tree, "//a[c/b]") == [1]

    def test_dot_predicate_always_true(self, tree):
        assert q(tree, "//a[.]") == q(tree, "//a")


class TestRelativeEvaluation:
    def test_eval_from_context(self, tree):
        path = parse_xpath("b")
        assert eval_path_from(tree, path, [1]) == [3]

    def test_eval_relative_descendant(self, tree):
        path = parse_xpath(".//b")
        assert eval_path_from(tree, path, [1]) == [3, 5]

    def test_absolute_needs_no_context(self, tree):
        path = parse_xpath("/site")
        assert eval_path_from(tree, path, [4]) == [0]

    def test_relative_requires_context(self, tree):
        with pytest.raises(ValueError):
            evaluate_reference(tree, parse_xpath("a/b"))
