"""The strategy-plugin registry: registration, resolution, fallbacks."""

import pytest

from repro.engine import registry
from repro.engine.api import Engine
from repro.engine.registry import StrategyBase, register_strategy
from repro.xpath.parser import parse_xpath

from test_engines_equivalence import assert_strategy_matches_oracle

XML = "<r><a><x/><b/><c><b/></c></a><b/></r>"

BUILTINS = {
    "naive",
    "jumping",
    "memo",
    "optimized",
    "hybrid",
    "deterministic",
    "mixed",
}


class TestBuiltinRegistration:
    def test_all_seven_builtins_registered(self):
        assert BUILTINS <= set(registry.strategy_names())

    def test_get_strategy_returns_named_instance(self):
        for name in BUILTINS:
            assert registry.get_strategy(name).name == name

    def test_unknown_strategy_raises_with_choices(self):
        with pytest.raises(ValueError, match="optimized"):
            registry.get_strategy("warp")

    def test_describe_strategies_has_summaries(self):
        described = dict(registry.describe_strategies())
        assert BUILTINS <= set(described)
        for name in BUILTINS:
            assert described[name], f"{name} has no one-line summary"


class TestResolution:
    def test_forward_query_keeps_requested_strategy(self):
        path = parse_xpath("//a/b")
        for name in ("naive", "jumping", "memo", "optimized"):
            assert registry.resolve(name, path).name == name

    def test_backward_axes_resolve_to_mixed_from_any_strategy(self):
        path = parse_xpath("//a/b/parent::a")
        assert path.has_backward_axes()
        for name in sorted(BUILTINS):
            assert registry.resolve(name, path).name == "mixed"

    def test_hybrid_falls_back_to_optimized_off_fragment(self):
        assert registry.resolve("hybrid", parse_xpath("/r/a[b]")).name == "optimized"

    def test_hybrid_native_on_descendant_chain(self):
        assert registry.resolve("hybrid", parse_xpath("//a//b")).name == "hybrid"

    def test_deterministic_native_on_path_queries(self):
        assert (
            registry.resolve("deterministic", parse_xpath("//a//b")).name
            == "deterministic"
        )

    def test_deterministic_falls_back_on_predicates(self):
        # Predicates are outside the deterministically-compilable
        # fragment (the //a[.//b]//c discussion of Section 1), so the
        # resolution is truthful about what runs.
        assert (
            registry.resolve("deterministic", parse_xpath("//a[b]")).name
            == "optimized"
        )

    def test_mixed_is_terminal(self):
        strategy = registry.get_strategy("mixed")
        assert strategy.fallback is None
        assert strategy.supports(parse_xpath("//a/parent::r"))


class TestPluginStrategies:
    def test_register_and_execute_plugin(self):
        @register_strategy
        class EchoNaive(StrategyBase):
            """A toy plugin: delegates to the naive evaluator."""

            name = "echo-naive"
            fallback = "mixed"
            needs_asta = True

            def execute(self, plan, index, stats):
                from repro.engine import naive

                return naive.evaluate(plan.asta, index, stats)

        try:
            assert "echo-naive" in registry.strategy_names()
            engine = Engine(XML, strategy="echo-naive")
            assert engine.select("//a//b") == [3, 5]
            # The conformance helper covers plugins exactly like builtins.
            for query in ("//a//b", "//b[not(c)]", "//a/b/parent::a"):
                assert_strategy_matches_oracle(engine, "echo-naive", query)
        finally:
            registry.unregister_strategy("echo-naive")
        assert "echo-naive" not in registry.strategy_names()

    def test_nameless_strategy_rejected(self):
        with pytest.raises(ValueError):

            @register_strategy
            class Nameless(StrategyBase):
                pass

    def test_exhausted_fallback_chain_raises(self):
        @register_strategy
        class Unsupporting(StrategyBase):
            """Supports nothing, falls back to itself."""

            name = "refusenik"
            fallback = "refusenik"

            def supports(self, path):
                return False

        try:
            with pytest.raises(ValueError, match="fallback chain"):
                registry.resolve("refusenik", parse_xpath("//a"))
        finally:
            registry.unregister_strategy("refusenik")


class TestEngineIntegration:
    def test_engine_validates_strategy_via_registry(self):
        with pytest.raises(ValueError):
            Engine(XML, strategy="warp")

    def test_engine_accepts_mixed_directly(self):
        assert Engine(XML, strategy="mixed").select("//a//b") == [3, 5]

    def test_resolved_strategy_visible_on_plan(self):
        engine = Engine(XML, strategy="hybrid")
        assert engine.prepare("//a//b").strategy.name == "hybrid"
        assert engine.prepare("/r/a[b]").strategy.name == "optimized"
        assert engine.prepare("//b/parent::a").strategy.name == "mixed"

    def test_reregistration_invalidates_cached_plans(self):
        engine = Engine(XML)
        stale = engine.prepare("//a//b")

        @register_strategy
        class Override(StrategyBase):
            """Replaces 'optimized' to prove plan caches refresh."""

            name = "optimized"
            needs_asta = True

            def execute(self, plan, index, stats):
                return True, [-42]

        try:
            assert engine.select("//a//b") == [-42]
            assert engine.prepare("//a//b") is not stale
        finally:
            from repro.engine.optimized import OptimizedStrategy

            register_strategy(OptimizedStrategy)
        assert engine.select("//a//b") == [3, 5]
