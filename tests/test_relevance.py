"""Relevant nodes (Definition 3.1, Lemmas 3.1/3.2)."""

from repro.automata.examples import sta_a_with_b_below, sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.labelset import LabelSet
from repro.automata.minimize import complete_topdown, minimize_bdsta, minimize_tdsta
from repro.automata.relevance import (
    bottomup_relevant,
    bottomup_universal_state,
    essential_labels,
    topdown_relevant,
    topdown_sink_state,
    topdown_universal_state,
)
from repro.tree.binary import BinaryTree


def tree(spec):
    return BinaryTree.from_spec(spec)


class TestSpecialStates:
    def test_dtd_recognizer_states(self):
        rec = sta_dtd_root_a()
        assert topdown_universal_state(rec) == "qT"
        assert topdown_sink_state(rec) == "qS"

    def test_example21_has_no_universal(self):
        sta = sta_desc_a_desc_b()
        assert topdown_universal_state(sta) is None
        assert topdown_sink_state(sta) is None

    def test_bottomup_universal(self):
        # In //a[.//b]'s automaton no state is non-changing.
        assert bottomup_universal_state(sta_a_with_b_below()) is None


class TestEssentialLabels:
    def test_example21_essential_labels(self):
        sta = sta_desc_a_desc_b()
        ess0 = essential_labels(sta, "q0")
        assert ess0.contains("a") and not ess0.contains("b")
        # q1 never changes state but selects on b: b is essential.
        ess1 = essential_labels(sta, "q1")
        assert ess1.contains("b") and not ess1.contains("a")

    def test_universal_state_has_no_essential_labels(self):
        rec = sta_dtd_root_a()
        assert essential_labels(rec, "qT").is_empty()


class TestTopDownRelevance:
    def test_dtd_only_root_relevant(self):
        rec = complete_topdown(sta_dtd_root_a())
        t = tree(("a", "b", ("c", "d"), "e"))
        assert topdown_relevant(rec, t) == frozenset({0})

    def test_dtd_rejecting_returns_none(self):
        rec = complete_topdown(sta_dtd_root_a())
        assert topdown_relevant(rec, tree(("b", "a"))) is None

    def test_example21_relevant_nodes(self):
        sta = sta_desc_a_desc_b()
        #      r(0)
        #    a(1)      x(4)    a(5)
        #    b(2) c(3)         b(6)
        t = tree(("r", ("a", "b", "c"), "x", ("a", "b")))
        relevant = topdown_relevant(sta, t)
        # a-nodes change state; b-nodes under them are selected.  The r, x
        # and c nodes loop in place.
        assert relevant == frozenset({1, 2, 5, 6})

    def test_selected_nodes_always_relevant(self):
        sta = sta_desc_a_desc_b()
        t = tree(("a", ("b", "b"), "c"))
        relevant = topdown_relevant(sta, t)
        for v in sta.selected_nodes(t):
            assert v in relevant


class TestBottomUpRelevance:
    def test_example_b1_relevance(self):
        sta = sta_a_with_b_below()
        #  r(0)
        #    a(1)          c(4)
        #      c(2)
        #        b(3)
        t = tree(("r", ("a", ("c", "b")), "c"))
        relevant = bottomup_relevant(sta, t)
        assert relevant is not None
        # The selected a is relevant; the b that triggers the state change
        # is relevant.
        assert 1 in relevant
        assert 3 in relevant
        # The plain trailing c gains no information.
        assert 4 not in relevant

    def test_selected_subset_of_relevant(self):
        sta = sta_a_with_b_below()
        t = tree(("a", ("a", "b"), ("c", "b"), "c"))
        relevant = bottomup_relevant(sta, t)
        for v in sta.selected_nodes(t):
            assert v in relevant


class TestDefinition31AgreesWithLemma31:
    """The paper's central relevance equation, checked literally:

    for *minimal* TDSTAs, the semantic characterization of Definition 3.1
    (sub-automaton equivalence, EXPTIME route) coincides with Lemma 3.1's
    syntactic state-comparison.
    """

    def test_on_example_21(self):
        from repro.automata.relevance import relevant_definition31

        sta = sta_desc_a_desc_b()
        for spec in (
            ("r", ("a", "b", "c"), "x", ("a", "b")),
            ("a", ("b", "b"), "c"),
            ("x", "y", "z"),
        ):
            t = tree(spec)
            assert relevant_definition31(sta, t) == topdown_relevant(sta, t)

    def test_on_dtd_recognizer(self):
        from repro.automata.relevance import relevant_definition31

        rec = complete_topdown(sta_dtd_root_a())
        for spec in (("a", "b", ("c", "d")), ("b", "a"), "a"):
            t = tree(spec)
            assert relevant_definition31(rec, t) == topdown_relevant(rec, t)

    def test_on_minimized_compiled_queries(self):
        from repro.automata.relevance import relevant_definition31
        from repro.engine.deterministic import compile_tdsta

        for query in ("//a//b", "/r/a/b", "//a/b//c"):
            sta = compile_tdsta(query)
            for spec in (
                ("r", ("a", ("b", ("d", "c")), "c")),
                ("r", "a", ("a", "b")),
            ):
                t = tree(spec)
                assert relevant_definition31(sta, t) == topdown_relevant(
                    sta, t
                ), (query, spec)

    def test_non_minimal_automata_can_disagree(self):
        """On a NON-minimal automaton the syntactic reading over-reports:
        the redundant state q1b differs syntactically from q1 but is
        semantically equivalent -- exactly why the paper minimizes first."""
        from repro.automata.relevance import relevant_definition31
        from repro.automata.sta import STA, Transition
        from repro.automata.labelset import ANY, LabelSet

        # Two copies of a universal state: syntactically changing, but
        # semantically nothing is relevant below the root.
        sta = STA(
            ["q0", "u1", "u2"],
            ["q0"],
            ["q0", "u1", "u2"],
            {},
            [
                Transition("q0", ANY, "u1", "u1"),
                Transition("u1", ANY, "u2", "u2"),
                Transition("u2", ANY, "u1", "u1"),
            ],
        )
        t = tree(("a", "b", ("c", "d")))
        semantic = relevant_definition31(sta, t)
        syntactic = topdown_relevant(sta, t)
        # Semantically all three states are the universal automaton, so
        # NOTHING is relevant; syntactically every node changes names.
        assert semantic == frozenset()
        assert syntactic == frozenset(range(t.n))
