"""Daemon hot-reload: generation swaps without dropping a request.

The scenarios the mutable-corpus tentpole promises: ``POST /reload``
picks up ``add``/``replace``/``remove``/``sync`` mutations atomically
(every response matches either the old or the new generation's oracle,
never a mixture), the old generation's mmaps are provably closed after
the drain (the in-process reader registry reaches zero, so ``compact``
can reclaim the retired bundle), previously-corrupt bundles are retried,
and the optional change-stamp poller reloads without being asked.
"""

import os
import threading
import time

import pytest

from repro import faults
from repro.engine.api import Engine
from repro.engine.workspace import Workspace
from repro.serve import DaemonThread, QueryDaemon, ServeClient, ServeError
from repro.store import DocumentStore, live_readers
from repro.store.manifest import RETIRED_PREFIX

XML_V1 = "<r><a><b/></a><a/><c><b/></c></r>"  # //a/b -> [2]
XML_V2 = "<r><a><b/><b/></a></r>"  # //a/b -> [2, 3]
ORACLES = {"v1": [2], "v2": [2, 3]}


def build_corpus(root, docs):
    store = DocumentStore(str(root))
    for name, xml in docs.items():
        store.save(name, xml)
    return store


def retired_paths(root):
    return [
        os.path.join(str(root), entry)
        for entry in os.listdir(str(root))
        if entry.startswith(RETIRED_PREFIX)
    ]


class TestReloadSwap:
    def test_replace_is_picked_up(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                assert client.query("//a/b", document="doc")["ids"] == [2]
                store.replace("doc", XML_V2)
                report = client.reload()
                assert report["reloaded"] is True
                assert report["replaced"] == ["doc"]
                assert report["drained"] is True
                assert client.query("//a/b", document="doc")["ids"] == [2, 3]

    def test_old_generation_handles_are_released(self, tmp_path):
        """The acceptance bar: after a reload, no leaked mmap handles --
        the retired bundle's reader count reaches zero and compact can
        delete it while the daemon keeps serving the new generation."""
        store = build_corpus(tmp_path, {"doc": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                client.query("//a/b", document="doc")
                store.replace("doc", XML_V2)
                (retired,) = retired_paths(tmp_path)
                # The daemon still maps the old generation (now renamed).
                assert live_readers(retired) == 1
                assert client.reload()["drained"] is True
                assert live_readers(retired) == 0
                report = store.compact()
                assert report["deleted"] and not report["kept"]
                assert client.query("//a/b", document="doc")["ids"] == [2, 3]

    def test_add_and_remove(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1, "victim": XML_V2})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                assert client.query("//a/b", document="victim")["ids"] == [2, 3]
                store.add("fresh", XML_V2)
                store.remove("victim")
                report = client.reload()
                assert report["added"] == ["fresh"]
                assert report["removed"] == ["victim"]
                assert report["unchanged"] == ["doc"]
                assert client.query("//a/b", document="fresh")["ids"] == [2, 3]
                with pytest.raises(ServeError) as exc:
                    client.query("//a/b", document="victim")
                assert exc.value.status == 404
                health = client.healthz()
                assert sorted(health["documents"]) == ["doc", "fresh"]

    def test_noop_reload(self, tmp_path):
        build_corpus(tmp_path, {"doc": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                report = client.reload()
                assert report["reloaded"] is False
                assert report["unchanged"] == ["doc"]
                stats = client.stats()["reload"]
                assert stats["noops"] == 1 and stats["reloads"] == 0
                assert stats["epoch"] == 1

    def test_reload_reports_generations(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                store.replace("doc", XML_V2)
                report = client.reload()
                assert report["generations"] == {
                    os.path.abspath(str(tmp_path)): store.generation()
                }
                stats = client.stats()["reload"]
                entry = stats["generations"]["doc"]
                assert entry["generation"] == store.generation()

    def test_warm_cache_invalidated_per_document_only(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1, "stable": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                for name in ("doc", "stable"):
                    assert not client.query("//a/b", document=name)["warm"]
                    assert client.query("//a/b", document=name)["warm"]
                store.replace("doc", XML_V2)
                client.reload()
                # The changed document re-prepares; the untouched one
                # keeps its warm plan.
                first = client.query("//a/b", document="doc")
                assert first["warm"] is False
                assert first["ids"] == [2, 3]
                assert client.query("//a/b", document="stable")["warm"]

    def test_reload_resets_quarantine_for_changed_document(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1})
        daemon = QueryDaemon(str(tmp_path), workers=2, fail_threshold=2)
        with DaemonThread(daemon) as handle:
            with ServeClient(port=handle.port, retries=0) as client:
                with faults.inject(
                    "serve.evaluate", "exception", match={"document": "doc"}
                ):
                    for _ in range(2):
                        with pytest.raises(ServeError):
                            client.query("//a/b", document="doc")
                with pytest.raises(ServeError) as exc:
                    client.query("//a/b", document="doc")
                assert exc.value.kind == "quarantined"
                # New content invalidates the old evidence.
                store.replace("doc", XML_V2)
                client.reload()
                assert client.query("//a/b", document="doc")["ids"] == [2, 3]

    def test_reload_retries_skipped_bundle(self, tmp_path):
        import shutil

        store = build_corpus(tmp_path, {"doc": XML_V1, "hurt": XML_V2})
        faults.corrupt_bundle(str(tmp_path / "hurt"), "label_of", seed=3)
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            assert "hurt" in handle.daemon.skipped
            with ServeClient(port=handle.port) as client:
                # Repair by republishing through the store.
                shutil.rmtree(str(tmp_path / "hurt"))
                store.save("hurt", XML_V2)
                report = client.reload()
                assert report["added"] == ["hurt"]
                assert report["skipped"] == {}
                assert client.query("//a/b", document="hurt")["ids"] == [2, 3]
                assert client.healthz()["status"] == "ok"


class TestReloadChaosDrill:
    def test_reload_mid_request_keeps_oracle_identity(self, tmp_path):
        """The drill the tentpole demands: /reload lands while slowed
        requests are in flight.  Zero failures, and every answer equals
        exactly the old or the new generation's oracle."""
        store = build_corpus(tmp_path, {"doc": XML_V1})
        daemon = QueryDaemon(
            str(tmp_path), workers=4, queue_depth=64, timeout=10.0
        )
        with DaemonThread(daemon) as handle:
            failures = []
            answers = []
            stop = threading.Event()

            def worker(seed):
                with ServeClient(port=handle.port, retry_seed=seed) as c:
                    while not stop.is_set():
                        try:
                            ids = c.query("//a/b", document="doc")["ids"]
                        except Exception as exc:
                            failures.append(f"{type(exc).__name__}: {exc}")
                            return
                        answers.append(tuple(ids))

            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(4)
            ]
            # Slow every evaluation down so the swap provably overlaps
            # in-flight requests (the drill is vacuous otherwise).
            plan = faults.FaultPlan(seed=11)
            plan.add("serve.evaluate", "slow_read", delay_s=0.02)
            with faults.active(plan):
                for thread in threads:
                    thread.start()
                time.sleep(0.15)
                store.replace("doc", XML_V2)
                with ServeClient(port=handle.port) as client:
                    report = client.reload()
                time.sleep(0.15)
                stop.set()
                for thread in threads:
                    thread.join()
            assert failures == []
            assert report["replaced"] == ["doc"]
            assert report["drained"] is True
            seen = set(answers)
            # Only the two generations' oracles -- never a mixture, an
            # empty answer, or an error shape.
            assert seen <= {tuple(ORACLES["v1"]), tuple(ORACLES["v2"])}
            assert tuple(ORACLES["v1"]) in seen  # traffic before the swap
            assert tuple(ORACLES["v2"]) in seen  # and after
            # And the old generation's handles are gone.
            for retired in retired_paths(tmp_path):
                assert live_readers(retired) == 0


class TestReloadPolling:
    def test_poll_triggers_reload(self, tmp_path):
        store = build_corpus(tmp_path, {"doc": XML_V1})
        daemon = QueryDaemon(str(tmp_path), workers=2, reload_poll=0.05)
        with DaemonThread(daemon) as handle:
            with ServeClient(port=handle.port) as client:
                assert client.query("//a/b", document="doc")["ids"] == [2]
                store.replace("doc", XML_V2)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if client.query("//a/b", document="doc")["ids"] == [2, 3]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("poller never picked up the new generation")
                assert client.stats()["reload"]["reloads"] >= 1

    def test_sync_is_picked_up_by_poll(self, tmp_path):
        src = tmp_path / "xml"
        src.mkdir()
        (src / "doc.xml").write_text(XML_V1)
        corpus = tmp_path / "corpus"
        store = DocumentStore(str(corpus))
        store.sync(str(src))
        daemon = QueryDaemon(str(corpus), workers=2, reload_poll=0.05)
        with DaemonThread(daemon) as handle:
            with ServeClient(port=handle.port) as client:
                (src / "doc.xml").write_text(XML_V2)
                (src / "extra.xml").write_text(XML_V1)
                store.sync(str(src))
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    health = client.healthz()
                    if sorted(health["documents"]) == ["doc", "extra"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("poller never mounted the synced document")
                assert client.query("//a/b", document="doc")["ids"] == [2, 3]
                assert client.query("//a/b", document="extra")["ids"] == [2]

    def test_negative_poll_rejected(self, tmp_path):
        build_corpus(tmp_path, {"doc": XML_V1})
        with pytest.raises(ValueError, match="reload_poll"):
            QueryDaemon(str(tmp_path), reload_poll=-1.0)


class TestPlannerRefresh:
    """Planner doc-stats staleness across reloads (and future in-place
    updates): ``Engine.refresh_planner`` rebuilds every cached ``auto``
    plan's :class:`~repro.engine.planner.PlannerState` from the index's
    *current* statistics, discarding frozen dispatch."""

    FREEZE_XML = "<r>" + "<a><b/><b/></a>" * 20 + "<c/>" * 5 + "</r>"

    def test_refresh_planner_unfreezes_and_replans(self):
        eng = Engine(self.FREEZE_XML, strategy="auto")
        plan = eng.prepare("//a/b")
        oracle = plan.select()
        for _ in range(24):  # trials + convergence runs
            plan.execute()
        state = plan.artifacts["planner"]
        assert state.frozen, "plan never converged; test premise broken"
        assert eng.refresh_planner(doc_stats={"height": 3}) == 1
        fresh = plan.artifacts["planner"]
        assert fresh is not state
        assert fresh.frozen is False and fresh.runs == 0
        # The frozen fast-path delegate is undone: execution routes
        # through the auto strategy (and its feedback loop) again.
        assert plan._execute_impl == plan.strategy.execute
        # The doctored statistics landed on the index.
        assert eng.index.doc_stats == {"height": 3}
        # And the refreshed plan still answers correctly.
        assert plan.select() == oracle

    def test_refresh_planner_skips_non_auto_plans(self):
        eng = Engine(self.FREEZE_XML, strategy="auto")
        eng.prepare("//a/b")
        eng.prepare("//c", strategy="vectorized")
        eng.prepare("//a", strategy="optimized")
        assert eng.refresh_planner() == 1

    def test_refresh_planner_reprices_against_new_stats(self):
        """The refresh is not a cosmetic unfreeze: the rebuilt state
        re-extracts features, so its cost table reflects whatever the
        document reports *now*."""
        eng = Engine(self.FREEZE_XML, strategy="auto")
        plan = eng.prepare("//a/b")
        before = plan.artifacts["planner"].choice.costs
        eng.refresh_planner()
        after = plan.artifacts["planner"].choice.costs
        assert after == before  # same document -> same pricing

    def test_reload_replans_changed_document(self, tmp_path):
        """Daemon-level pin: after a reload, the replaced document's
        planner verdict is priced against the *new* bundle's statistics
        (fresh state, zero runs), while the unchanged document keeps its
        warm plan untouched."""
        store = build_corpus(tmp_path, {"doc": XML_V1, "stable": XML_V1})
        with DaemonThread(QueryDaemon(str(tmp_path), workers=2)) as handle:
            with ServeClient(port=handle.port) as client:
                before = client.explain("//a/b", document="doc")
                for _ in range(4):  # warm both plans
                    client.query("//a/b", document="doc")
                    client.query("//a/b", document="stable")
                store.replace("doc", XML_V2)
                client.reload()
                after = client.explain("//a/b", document="doc")
                assert after["warm"] is False  # re-prepared from scratch
                assert after["planner"]["runs"] == 0
                assert after["planner"]["frozen"] is False
                # v1 has two <a> elements, v2 one: the step-candidate
                # pricing must have moved with the document.
                assert after["planner"]["costs"] != before["planner"]["costs"]
                assert client.query("//a/b", document="doc")["ids"] == [2, 3]
                # The untouched document's plan survived the reload warm.
                stable = client.explain("//a/b", document="stable")
                assert stable["warm"] is True
                assert stable["planner"]["costs"] == before["planner"]["costs"]


class TestWorkspaceSwap:
    def test_swap_preserves_order_and_returns_old(self, tmp_path):
        store = build_corpus(tmp_path, {"a": XML_V1, "b": XML_V1, "c": XML_V1})
        ws = Workspace()
        ws.open_store(str(tmp_path))
        assert ws.documents() == ["a", "b", "c"]
        store.replace("b", XML_V2)
        new = store.open("b")
        old = ws.swap_stored("b", new)
        assert old is not None and not old.closed
        assert ws.documents() == ["a", "b", "c"]
        assert ws.select("//a/b", "b") == [2, 3]
        old.close()
        ws.close()

    def test_swap_unknown_name_raises(self, tmp_path):
        build_corpus(tmp_path, {"a": XML_V1})
        with Workspace() as ws:
            ws.open_store(str(tmp_path))
            stored = DocumentStore(str(tmp_path)).open("a")
            try:
                with pytest.raises(KeyError):
                    ws.swap_stored("missing", stored)
            finally:
                stored.close()

    def test_pop_stored_hands_back_unclosed(self, tmp_path):
        build_corpus(tmp_path, {"a": XML_V1})
        ws = Workspace()
        ws.open_store(str(tmp_path))
        old = ws.pop_stored("a")
        assert old is not None and not old.closed
        assert ws.documents() == []
        old.close()
        ws.close()

    def test_pop_caller_owned_returns_none(self):
        ws = Workspace()
        ws.add("a", XML_V1)
        assert ws.pop_stored("a") is None
        assert ws.documents() == []
        ws.close()
