"""The persistent query daemon: concurrency, admission, errors, identity."""

import json
import socket
import threading
import time

import pytest

from repro.engine.workspace import Workspace
from repro.serve import (
    DaemonThread,
    QueryDaemon,
    ServeClient,
    ServeError,
    format_rows,
)
from repro.xmark.generator import XMarkGenerator

QUERY_MIX = [
    "//keyword",
    "/site/regions//item",
    "//person[address]",
    "//description//emph",
    "/site/open_auctions/open_auction",
    "//item[location]/description",
]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A two-document store corpus plus the serial oracle answers."""
    root = tmp_path_factory.mktemp("serve-corpus")
    ws = Workspace()
    ws.add("xmark", XMarkGenerator(scale=0.05, seed=7).xml())
    ws.add("tiny", "<r><a><b/></a><a/><c><b/></c></r>")
    ws.save(str(root))
    oracle = {
        ("xmark", q): ws.select(q, "xmark") for q in QUERY_MIX
    }
    oracle[("tiny", "//a/b")] = ws.select("//a/b", "tiny")
    ws.close()
    return str(root), oracle


@pytest.fixture(scope="module")
def daemon(corpus):
    root, _ = corpus
    # Enough admission headroom for the 16-parallel-client tests.
    with DaemonThread(
        QueryDaemon(root, workers=2, queue_depth=32, timeout=10.0)
    ) as handle:
        yield handle.daemon


@pytest.fixture()
def client(daemon):
    with ServeClient(port=daemon.port) as c:
        yield c


class TestBasicServing:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["ok"] is True
        assert sorted(payload["documents"]) == ["tiny", "xmark"]

    def test_query_matches_serial_oracle(self, corpus, client):
        _, oracle = corpus
        for (doc, query), expected in oracle.items():
            payload = client.query(query, document=doc)
            assert payload["ids"] == expected, (doc, query)
            assert payload["count"] == len(expected)

    def test_count_only_omits_ids(self, client):
        payload = client.query("//keyword", document="xmark", count=True)
        assert "ids" not in payload
        assert payload["count"] > 0

    def test_labels_and_stats(self, corpus, client):
        _, oracle = corpus
        payload = client.query(
            "//a/b", document="tiny", labels=True, stats=True
        )
        assert payload["ids"] == oracle[("tiny", "//a/b")]
        assert payload["labels"] == ["b"] * len(payload["ids"])
        assert payload["stats"]["selected"] == len(payload["ids"])

    def test_warm_repeat_skips_prepare(self, client):
        cold = client.query("//person[address]", document="xmark")
        compiled_before = client.stats()["caches"]["compiled"]["compilations"]
        warm = client.query("//person[address]", document="xmark")
        compiled_after = client.stats()["caches"]["compiled"]["compilations"]
        assert warm["warm"] is True
        assert warm["ids"] == cold["ids"]
        # No re-parse/re-plan on the warm path: the daemon's plan map
        # answered, so the shared compiled cache saw no new compilation.
        assert compiled_after == compiled_before
        assert warm["timing_ms"]["prepare"] <= warm["timing_ms"]["total"]

    def test_batch_matches_singles(self, corpus, client):
        _, oracle = corpus
        payload = client.batch(QUERY_MIX, document="xmark")
        assert [e["query"] for e in payload["results"]] == QUERY_MIX
        for entry in payload["results"]:
            assert entry["ids"] == oracle[("xmark", entry["query"])]

    def test_explain_exposes_planner_verdict(self, client):
        payload = client.explain("//keyword", document="xmark")
        assert payload["strategy"] == "auto"
        assert "planner" in payload
        assert payload["text"].startswith("strategy:")

    def test_stats_shape(self, client):
        payload = client.stats()
        assert payload["admission"]["limit"] == 2 + 32
        assert payload["documents"]["xmark"]["nodes"] > 0
        assert payload["counters"]["queries"] > 0
        assert payload["prepared"]["size"] >= 1
        assert "compiled" in payload["caches"]


class TestStructuredErrors:
    def test_syntax_error_carries_offset(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.query("//a[", document="tiny")
        err = excinfo.value
        assert err.status == 400 and err.kind == "syntax"
        assert err.payload["error"]["offset"] == 4
        assert err.payload["error"]["query"] == "//a["

    def test_unknown_document_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.query("//a", document="nope")
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "unknown_document"
        assert "documents" in excinfo.value.payload["error"]

    def test_document_required_when_ambiguous(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.query("//a")
        assert excinfo.value.status == 400

    def test_bad_field_types(self, client):
        for body in (
            {"query": ""},
            {"query": 42},
            {"query": "//a", "document": "tiny", "count": "yes"},
            {"query": "//a", "document": "tiny", "timeout_s": -1},
            {"query": "//a", "document": "tiny", "timeout_s": True},
            {"query": "//a", "document": "tiny", "strategy": "bogus"},
        ):
            with pytest.raises(ServeError) as excinfo:
                client._request("POST", "/query", body=body)
            assert excinfo.value.status == 400, body

    def test_bad_batch_payloads(self, client):
        for queries in (None, [], ["//a", 3], "nope"):
            with pytest.raises(ServeError) as excinfo:
                client._request(
                    "POST",
                    "/batch",
                    body={"document": "tiny", "queries": queries},
                )
            assert excinfo.value.status == 400, queries

    def test_unknown_route_and_method(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/query")
        assert excinfo.value.status == 405

    def test_invalid_json_body(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port)) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 5\r\n\r\n{oops"
            )
            response = sock.recv(65536)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"bad_request" in response

    def test_malformed_request_line_closes_connection(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port)) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            response = sock.recv(65536)
            assert b"400" in response.split(b"\r\n", 1)[0]
            # The daemon answered Connection: close and drops the socket.
            assert b"close" in response.lower()


class TestConcurrency:
    def test_sixteen_parallel_clients_identical_results(self, corpus, daemon):
        _, oracle = corpus
        keys = [k for k in oracle if k[0] == "xmark"]
        failures = []

        def worker(seed: int) -> None:
            try:
                with ServeClient(port=daemon.port) as c:
                    for i in range(6):
                        doc, query = keys[(seed + i) % len(keys)]
                        payload = c.query(query, document=doc)
                        if payload["ids"] != oracle[(doc, query)]:
                            failures.append((doc, query, payload["ids"]))
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                failures.append((seed, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_mixed_endpoints_under_concurrency(self, corpus, daemon):
        _, oracle = corpus
        errors = []

        def query_worker():
            with ServeClient(port=daemon.port) as c:
                for _ in range(4):
                    payload = c.query("//keyword", document="xmark")
                    if payload["ids"] != oracle[("xmark", "//keyword")]:
                        errors.append("query mismatch")

        def batch_worker():
            with ServeClient(port=daemon.port) as c:
                payload = c.batch(QUERY_MIX[:3], document="xmark")
                for entry in payload["results"]:
                    if entry["ids"] != oracle[("xmark", entry["query"])]:
                        errors.append("batch mismatch")

        def explain_worker():
            with ServeClient(port=daemon.port) as c:
                for _ in range(3):
                    payload = c.explain("//keyword", document="xmark")
                    if payload["strategy"] != "auto":
                        errors.append("explain mismatch")

        def wrapped(fn):
            def run():
                try:
                    fn()
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

            return run

        threads = [
            threading.Thread(target=wrapped(fn))
            for fn in (query_worker, batch_worker, explain_worker)
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestAdmissionAndTimeouts:
    @pytest.fixture()
    def tight_daemon(self, corpus):
        """One worker, zero queue slack: limit = 1 request in flight."""
        root, _ = corpus
        with DaemonThread(
            QueryDaemon(root, workers=1, queue_depth=0, timeout=5.0)
        ) as handle:
            yield handle.daemon

    def test_overflow_answers_429_then_recovers(self, tight_daemon):
        gate = threading.Event()
        release = threading.Event()

        def plug():
            gate.set()
            release.wait(timeout=10)

        # Occupy the single worker thread so the next admitted request
        # queues, holding its admission slot.
        tight_daemon._pool.submit(plug)
        assert gate.wait(timeout=5)

        first_done = threading.Event()
        first_result = {}

        def first_request():
            with ServeClient(port=tight_daemon.port) as c:
                try:
                    first_result["payload"] = c.query(
                        "//a/b", document="tiny"
                    )
                finally:
                    first_done.set()

        t = threading.Thread(target=first_request)
        t.start()
        # Wait until the first request holds the admission slot.
        deadline = time.time() + 5
        while tight_daemon._in_flight < 1 and time.time() < deadline:
            time.sleep(0.01)
        assert tight_daemon._in_flight == 1

        with ServeClient(port=tight_daemon.port) as c:
            with pytest.raises(ServeError) as excinfo:
                c.query("//a/b", document="tiny")
        assert excinfo.value.status == 429
        assert excinfo.value.kind == "overloaded"

        release.set()
        t.join(timeout=10)
        assert first_done.is_set()
        assert first_result["payload"]["ids"]
        # The daemon recovered: fresh requests are admitted again.
        with ServeClient(port=tight_daemon.port) as c:
            assert c.query("//a/b", document="tiny")["ids"]
        assert tight_daemon.counters["rejected"] >= 1

    def test_timeout_answers_504_and_frees_the_slot(self, tight_daemon):
        release = threading.Event()
        tight_daemon._pool.submit(release.wait, 10)
        try:
            with ServeClient(port=tight_daemon.port) as c:
                with pytest.raises(ServeError) as excinfo:
                    # Queued behind the plug and cancelled at the deadline.
                    c.query("//a/b", document="tiny", timeout_s=0.2)
            assert excinfo.value.status == 504
            assert excinfo.value.kind == "timeout"
            assert tight_daemon._in_flight == 0
            assert tight_daemon.counters["timeouts"] >= 1
        finally:
            release.set()
        with ServeClient(port=tight_daemon.port) as c:
            assert c.query("//a/b", document="tiny")["ids"]


class TestPooledDaemon:
    """``--pool-workers N``: batches on the shared-memory worker pool."""

    @pytest.fixture(scope="class")
    def pooled(self, corpus):
        root, _ = corpus
        with DaemonThread(
            QueryDaemon(
                root,
                workers=2,
                timeout=30.0,
                pool_workers=2,
                pool_min_nodes=1000,
            )
        ) as handle:
            yield handle.daemon

    def test_batch_identical_to_oracle(self, corpus, pooled):
        _, oracle = corpus
        with ServeClient(port=pooled.port) as c:
            out = c.batch(QUERY_MIX, document="xmark")
        assert out["executor"] == "pool"
        got = {entry["query"]: entry["ids"] for entry in out["results"]}
        assert got == {q: oracle[("xmark", q)] for q in QUERY_MIX}

    def test_oversized_query_routes_through_pool(self, corpus, pooled):
        _, oracle = corpus
        with ServeClient(port=pooled.port) as c:
            out = c.query(QUERY_MIX[0], document="xmark")
            tiny = c.query("//a/b", document="tiny")
        # xmark (>= pool_min_nodes) goes to the pool; tiny stays on the
        # warm thread path.
        assert out["executor"] == "pool"
        assert out["ids"] == oracle[("xmark", QUERY_MIX[0])]
        assert "executor" not in tiny
        assert tiny["ids"] == oracle[("tiny", "//a/b")]

    def test_strategy_override_keeps_thread_path(self, corpus, pooled):
        _, oracle = corpus
        with ServeClient(port=pooled.port) as c:
            out = c.batch(QUERY_MIX[:2], document="xmark", strategy="naive")
        assert "executor" not in out
        got = {entry["query"]: entry["ids"] for entry in out["results"]}
        assert got == {q: oracle[("xmark", q)] for q in QUERY_MIX[:2]}

    def test_stats_expose_pool_health(self, pooled):
        with ServeClient(port=pooled.port) as c:
            # Repeated identical batches must start re-hitting the
            # workers' caches (which chunk lands on which worker is
            # dynamic, so one repetition is not guaranteed to overlap).
            for _ in range(4):
                c.batch(QUERY_MIX, document="xmark")
                stats = c.stats()
                if stats["pool"]["health"]["warm_hits"] > 0:
                    break
        pool = stats["pool"]
        assert pool["enabled"] and pool["workers"] == 2
        assert pool["batches"] >= 1 and pool["fallbacks"] == 0
        health = pool["health"]
        assert health["alive"] == 2
        assert health["tasks"] >= len(QUERY_MIX)
        assert health["warm_hits"] > 0
        assert set(health["per_worker"]) == {"0", "1"}
        for key in ("queue_depth", "in_flight", "steals", "warm_hit_rate"):
            assert key in health


class TestLifecycle:
    def test_startup_failure_surfaces(self, tmp_path):
        with pytest.raises(ValueError, match="no document bundles"):
            QueryDaemon(str(tmp_path / "empty"))

    def test_duplicate_names_across_stores_rejected(self, corpus, tmp_path):
        root, _ = corpus
        ws = Workspace()
        ws.add("tiny", "<r><z/></r>")
        ws.save(str(tmp_path))
        ws.close()
        with pytest.raises(ValueError, match="already registered"):
            QueryDaemon([root, str(tmp_path)])

    def test_stop_releases_store_handles(self, corpus):
        root, _ = corpus
        handle = DaemonThread(QueryDaemon(root, workers=1)).start()
        daemon = handle.daemon
        stored = dict(daemon.workspace._stored)
        assert stored
        with ServeClient(port=daemon.port) as c:
            assert c.query("//a/b", document="tiny")["ids"]
        handle.stop()
        assert all(doc.closed for doc in stored.values())
        # And the port is released.
        with pytest.raises((ConnectionError, OSError)):
            socket.create_connection(("127.0.0.1", daemon.port), timeout=0.5)

    def test_daemon_thread_start_error_reraises(self, tmp_path):
        # A bad bind surfaces through start(): grab a port, then collide.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        probe.listen(1)
        port = probe.getsockname()[1]
        try:
            ws_root = tmp_path / "c"
            ws = Workspace()
            ws.add("d", "<r/>")
            ws.save(str(ws_root))
            ws.close()
            daemon = QueryDaemon(str(ws_root), port=port)
            with pytest.raises(OSError):
                DaemonThread(daemon).start()
        finally:
            probe.close()


class TestClientFormatting:
    ROWS = [
        {"id": 1, "label": "regions"},
        {"id": 42, "label": "keyword"},
    ]

    def test_table(self):
        text = format_rows(self.ROWS, ["id", "label"], "table")
        lines = text.splitlines()
        assert lines[0].split() == ["id", "label"]
        assert lines[2].split() == ["1", "regions"]
        assert lines[3].split() == ["42", "keyword"]

    def test_csv(self):
        text = format_rows(self.ROWS, ["id", "label"], "csv")
        assert text.splitlines() == ["id,label", "1,regions", "42,keyword"]

    def test_json(self):
        assert json.loads(format_rows(self.ROWS, ["id"], "json")) == self.ROWS

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            format_rows(self.ROWS, ["id"], "yaml")
