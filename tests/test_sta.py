"""STA structure and reference semantics (Section 2)."""

import pytest

from repro.automata.examples import sta_a_with_b_below, sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.labelset import ANY, LabelSet
from repro.automata.sta import STA, Transition
from repro.tree.binary import BinaryTree


def tree(spec):
    return BinaryTree.from_spec(spec)


class TestStructure:
    def test_validation_rejects_unknown_states(self):
        with pytest.raises(ValueError):
            STA(["q"], ["q"], ["nope"], {}, [])
        with pytest.raises(ValueError):
            STA(["q"], ["q"], ["q"], {}, [Transition("q", ANY, "q", "zz")])

    def test_dest_and_source(self):
        sta = sta_desc_a_desc_b()
        assert sta.dest("q0", "a") == [("q1", "q0")]
        assert sta.dest("q0", "c") == [("q0", "q0")]
        assert sta.source("q1", "q0", "a") == ["q0"]

    def test_selects(self):
        sta = sta_desc_a_desc_b()
        assert sta.selects("q1", "b")
        assert not sta.selects("q1", "a")
        assert not sta.selects("q0", "b")

    def test_alphabet_sample_has_fresh_witness(self):
        sta = sta_desc_a_desc_b()
        sample = sta.alphabet_sample()
        assert "a" in sample and "b" in sample
        assert sample[-1] not in ("a", "b")

    def test_determinism_classification(self):
        td = sta_desc_a_desc_b()
        assert td.is_topdown_deterministic()
        assert td.is_topdown_complete()
        assert not td.is_bottomup_deterministic()  # |B| = 2
        bu = sta_a_with_b_below()
        assert bu.is_bottomup_deterministic()
        assert bu.is_bottomup_complete()

    def test_non_changing_states(self):
        rec = sta_dtd_root_a()
        assert rec.is_non_changing("qT")
        assert rec.is_non_changing("qS")
        assert not rec.is_non_changing("q0")
        assert rec.is_topdown_universal("qT")
        assert rec.is_topdown_sink("qS")

    def test_restrict_drops_unreachable(self):
        sta = sta_desc_a_desc_b()
        sub = sta.restrict("q1")
        assert set(sub.states) == {"q1"}
        assert sub.top == {"q1"}


class TestSemantics:
    def test_example21_selects_b_descendants_of_a(self):
        sta = sta_desc_a_desc_b()
        t = tree(("r", ("a", "b", ("c", "b")), "b"))
        # nodes: 0 r, 1 a, 2 b, 3 c, 4 b, 5 b; selected: b's under the a.
        assert sta.selected_nodes(t) == [2, 4]

    def test_example21_accepts_everything(self):
        sta = sta_desc_a_desc_b()
        assert sta.accepts(tree("x"))
        assert sta.accepts(tree(("a", "b")))

    def test_example21_no_a_no_selection(self):
        sta = sta_desc_a_desc_b()
        assert sta.selected_nodes(tree(("r", "b", "b"))) == []

    def test_b_not_under_a_not_selected(self):
        sta = sta_desc_a_desc_b()
        # b as following sibling of a, not descendant.
        assert sta.selected_nodes(tree(("r", "a", "b"))) == []

    def test_bdsta_example_selects_a_with_b_below(self):
        sta = sta_a_with_b_below()
        t = tree(("r", ("a", ("c", "b")), ("a", "c"), "b"))
        # first a (id 1) has a b descendant; second a (id 4) does not; the
        # trailing b (id 6) is not below any a.
        assert sta.selected_nodes(t) == [1]

    def test_bdsta_example_accepts_all(self):
        sta = sta_a_with_b_below()
        for spec in ("x", ("a", "b"), ("b", "a"), ("r", "a", "b")):
            assert sta.accepts(tree(spec))

    def test_dtd_recognizer(self):
        rec = sta_dtd_root_a()
        assert rec.accepts(tree(("a", "b", ("c", "d"))))
        assert rec.accepts(tree("a"))
        assert not rec.accepts(tree(("b", "a")))
        assert rec.selected_nodes(tree(("a", "b"))) == []

    def test_deterministic_topdown_run_matches_oracle(self):
        sta = sta_desc_a_desc_b()
        t = tree(("r", ("a", "b"), "c"))
        run = sta.deterministic_topdown_run(t)
        reach = sta.useful_states(t)
        for v in range(t.n):
            assert run[v] in reach[v]

    def test_deterministic_run_rejects(self):
        rec = sta_dtd_root_a()
        assert rec.deterministic_topdown_run(tree(("b", "a"))) is None

    def test_rename_merges_states(self):
        sta = sta_desc_a_desc_b()
        merged = sta.rename({"q1": "q0"})
        assert set(merged.states) == {"q0"}
        # Renaming q1 into q0 changes the language of selections -- this is
        # purely a structural operation used by minimization internals.
        assert len(merged.transitions) <= len(sta.transitions)
