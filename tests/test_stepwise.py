"""Step-wise baseline and staircase-join primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.staircase import (
    ancestors_with_label,
    descendants_with_label,
    topmost_prune,
)
from repro.baselines.stepwise import stepwise_evaluate
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.index.labels import LabelIndex
from repro.tree.binary import BinaryTree
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees


class TestStaircase:
    def test_topmost_prune_removes_nested(self):
        tree = BinaryTree.from_xml("<r><a><a><b/></a></a><a/></r>")
        # ids: 0 r, 1 a, 2 a, 3 b, 4 a
        assert topmost_prune(tree, [1, 2, 4]) == [1, 4]

    def test_topmost_prune_keeps_disjoint(self):
        tree = BinaryTree.from_xml("<r><a/><a/><a/></r>")
        assert topmost_prune(tree, [1, 2, 3]) == [1, 2, 3]

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=50)
    def test_pruned_descendant_step_loses_nothing(self, tree):
        labels = LabelIndex(tree)
        context = [v for v in range(tree.n) if tree.label(v) == "a"]
        got = descendants_with_label(tree, labels, context, "b")
        expected = sorted(
            {
                w
                for v in context
                for w in tree.xml_descendants(v)
                if tree.label(w) == "b"
            }
        )
        assert got == expected

    def test_ancestors_with_label(self):
        tree = BinaryTree.from_xml("<r><a><x><b/></x></a></r>")
        assert ancestors_with_label(tree, [3], "a") == [1]
        assert ancestors_with_label(tree, [3], None) == [0, 1, 2]

    def test_descendants_wildcard(self):
        tree = BinaryTree.from_xml("<r><a><b/></a></r>")
        labels = LabelIndex(tree)
        assert descendants_with_label(tree, labels, [0], None) == [1, 2]

    def test_stats_count_scanned_tuples(self):
        tree = BinaryTree.from_xml("<r><a><b/></a><a><b/></a></r>")
        labels = LabelIndex(tree)
        stats = EvalStats()
        descendants_with_label(tree, labels, [1, 3], "b", stats)
        assert stats.visited == 2  # one scanned tuple per context subtree

    def test_indexed_variant_agrees(self):
        from repro.baselines.staircase import descendants_with_label_indexed

        tree = BinaryTree.from_xml("<r><a><b/><c/></a><a><b/></a></r>")
        labels = LabelIndex(tree)
        assert descendants_with_label_indexed(
            tree, labels, [1, 4], "b"
        ) == descendants_with_label(tree, labels, [1, 4], "b")


class TestStepwiseEngine:
    def test_matches_reference_on_sample(self, small_tree, small_index):
        for query in ("//a//b", "/site/a/b", "//a[c]//b", "//a[not(x)]"):
            expected = evaluate_reference(small_tree, parse_xpath(query))
            assert stepwise_evaluate(query, small_index) == expected

    def test_rejects_relative(self, small_index):
        with pytest.raises(ValueError):
            stepwise_evaluate("a/b", small_index)

    def test_empty_intermediate_short_circuits(self, small_index):
        stats = EvalStats()
        assert stepwise_evaluate("//zz//a//b", small_index, stats) == []

    def test_predicate_stats_accumulate(self, small_index):
        stats = EvalStats()
        stepwise_evaluate("//a[b]", small_index, stats)
        assert stats.visited > 0

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_random(self, tree):
        index = TreeIndex(tree)
        for query in ("//a//b", "/a/b[c]", "//a[b or not(c)]", "/a/*/b"):
            expected = evaluate_reference(tree, parse_xpath(query))
            assert stepwise_evaluate(query, index) == expected
