"""Persistent document store: round-trip equivalence, format, plumbing."""

import json
import os
import pickle
import random

import numpy as np
import pytest

from repro.engine import registry
from repro.engine.api import Engine
from repro.engine.workspace import Workspace
from repro.index.succinct import SuccinctTree
from repro.store import (
    DocumentStore,
    StoreError,
    StoreFormatError,
    open_document,
    read_header,
    save_document,
)
from repro.tree.binary import BinaryTree
from repro.xmark.generator import XMarkGenerator

from strategies import random_core_query, random_document

DEGENERATE_DOCS = [
    "<r/>",
    "<r><a/></r>",
    "<a>" + "<a>" * 40 + "<b/>" + "</a>" * 40 + "</a>",
    "<r>" + "<x/>" * 200 + "</r>",
    "<r>" + "<a><b><c/></b></a>" * 30 + "</r>",
]

QUERY_MIX = [
    "//a",
    "//a//b",
    "/r/a",
    "//a[b]",
    "//*[a or b]",
    "//a[not(.//c)]//b",
    "/r/node()/c",
]


def _roundtrip(tmp_path, document, name="doc", **kwargs):
    bundle = os.path.join(str(tmp_path), name)
    save_document(document, bundle, **kwargs)
    return open_document(bundle)


class TestRoundTripEquivalence:
    def test_every_strategy_identical_on_reopened_docs(self, tmp_path):
        """Results and counters match fresh-parse vs mmap-reopen, for every
        registered strategy on plain and degenerate documents."""
        for d, xml in enumerate(DEGENERATE_DOCS):
            stored = _roundtrip(tmp_path, xml, name=f"doc{d}")
            for strategy in registry.strategy_names():
                fresh = Engine(xml, strategy=strategy)
                reopened = Engine(stored, strategy=strategy)
                for query in QUERY_MIX:
                    a = fresh.execute(query)
                    b = reopened.execute(query)
                    assert list(a.ids) == list(b.ids), (strategy, xml, query)
                    assert a.accepted == b.accepted
                    assert a.stats.snapshot() == b.stats.snapshot(), (
                        strategy,
                        xml,
                        query,
                    )

    def test_encoded_documents_roundtrip(self, tmp_path):
        rng = random.Random(99)
        for d in range(10):
            xml = random_document(rng, attributes=True, text=True)
            stored = _roundtrip(
                tmp_path,
                xml,
                name=f"enc{d}",
                encode_attributes=True,
                encode_text=True,
            )
            fresh = Engine(xml, encode_attributes=True, encode_text=True)
            reopened = Engine(stored)
            queries = [
                random_core_query(rng, attributes=True, text=True)
                for _ in range(8)
            ] + ["//a[@id]", "//*[text()]"]
            for strategy in registry.strategy_names():
                fresh.set_strategy(strategy)
                reopened.set_strategy(strategy)
                for query in queries:
                    assert fresh.select(query) == reopened.select(query), (
                        strategy,
                        xml,
                        query,
                    )

    def test_fuzz_corpus_all_strategies(self, tmp_path):
        rng = random.Random(20260730)
        for d in range(15):
            xml = random_document(rng)
            stored = _roundtrip(tmp_path, xml, name=f"fuzz{d}")
            queries = [random_core_query(rng) for _ in range(6)]
            for strategy in registry.strategy_names():
                fresh = Engine(xml, strategy=strategy)
                reopened = Engine(stored, strategy=strategy)
                for query in queries:
                    assert fresh.select(query) == reopened.select(query), (
                        strategy,
                        xml,
                        query,
                    )

    def test_reopened_ids_are_plain_ints(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a><b/></a><b/></r>")
        ids = Engine(stored).select("//b")
        assert ids == [2, 3]
        assert all(type(v) is int for v in ids)
        json.dumps(ids)  # would raise on np.int64 leakage

    def test_xmark_reopen_identical(self, tmp_path):
        xml = XMarkGenerator(scale=0.05, seed=11, text_content=True).xml()
        stored = _roundtrip(tmp_path, xml, name="xmark")
        fresh = Engine(xml)
        reopened = Engine(stored)
        for query in ("//keyword", "/site/regions//item[mailbox]", "//emph"):
            assert fresh.select(query) == reopened.select(query)


class TestStoredDocument:
    def test_mmap_and_materialized_opens_agree(self, tmp_path):
        bundle = os.path.join(str(tmp_path), "doc")
        save_document("<r><a><b/></a></r>", bundle)
        mapped = open_document(bundle, mmap=True)
        loaded = open_document(bundle, mmap=False)
        assert Engine(mapped).select("//b") == Engine(loaded).select("//b")
        assert isinstance(mapped.index.xml_end_array(), np.ndarray)

    def test_pickles_as_path(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a/><a/></r>")
        blob = pickle.dumps(stored)
        assert len(blob) < 500  # a path, not an array payload
        clone = pickle.loads(blob)
        assert Engine(clone).select("//a") == [1, 2]

    def test_succinct_rehydrates_from_state(self, tmp_path):
        xml = "<r><a><b/><c/></a><d><e/></d></r>"
        stored = _roundtrip(tmp_path, xml)
        rebuilt = SuccinctTree.from_binary(BinaryTree.from_xml(xml))
        mapped = stored.succinct()
        assert mapped.n == rebuilt.n
        for v in range(mapped.n):
            assert mapped.first_child(v) == rebuilt.first_child(v)
            assert mapped.next_sibling(v) == rebuilt.next_sibling(v)
            assert mapped.parent(v) == rebuilt.parent(v)

    def test_header_summary(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a x='1'>t</a></r>")
        header = read_header(stored.path)
        assert header["n"] == stored.n == 2
        assert header["labels"] == ["r", "a"]
        assert header["encoded_attributes"] is False


class TestFormatValidation:
    def test_version_mismatch_rejected(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r/>")
        path = os.path.join(stored.path, "header.json")
        header = json.load(open(path))
        header["version"] = 999
        json.dump(header, open(path, "w"))
        with pytest.raises(StoreFormatError, match="version"):
            open_document(stored.path)

    def test_missing_array_rejected(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r/>")
        os.remove(os.path.join(stored.path, "xml_end.npy"))
        with pytest.raises(StoreFormatError, match="xml_end"):
            open_document(stored.path)

    def test_shape_mismatch_rejected(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a/></r>")
        np.save(
            os.path.join(stored.path, "label_of.npy"),
            np.zeros(7, dtype=np.int64),
        )
        with pytest.raises(StoreFormatError, match="label_of"):
            open_document(stored.path)

    def test_not_a_bundle(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a document bundle"):
            open_document(str(tmp_path))

    def test_unstorable_document_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_document(42, os.path.join(str(tmp_path), "bad"))


class TestDocumentStore:
    def test_save_open_names(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        store.save("one", "<r><a/></r>")
        store.save("two", "<r><b/></r>")
        assert store.names() == ["one", "two"]
        assert "one" in store and "zzz" not in store
        assert len(store) == 2
        assert Engine(store.open("two")).select("//b") == [1]
        assert set(store.headers()) == {"one", "two"}

    def test_open_missing_name(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        with pytest.raises(StoreError, match="no document"):
            store.open("nope")

    def test_invalid_names_rejected(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        for name in ("", "..", f"a{os.sep}b"):
            with pytest.raises(ValueError):
                store.path_for(name)


class TestWorkspaceStore:
    def test_save_then_open_store_roundtrip(self, tmp_path):
        ws = Workspace()
        ws.add("d1", "<r><a><b/></a></r>")
        ws.add("d2", "<r><b/><a><b/><b/></a></r>")
        saved = ws.save(str(tmp_path))
        assert set(saved) == {"d1", "d2"}

        reopened = Workspace()
        assert reopened.open_store(str(tmp_path)) == ["d1", "d2"]
        assert reopened.select_all("//a/b") == ws.select_all("//a/b")

    def test_open_store_subset_and_empty(self, tmp_path):
        ws = Workspace()
        ws.add("only", "<r><a/></r>")
        ws.save(str(tmp_path))
        picky = Workspace()
        assert picky.open_store(str(tmp_path), names=["only"]) == ["only"]
        with pytest.raises(ValueError, match="no document bundles"):
            Workspace().open_store(str(tmp_path / "empty"))

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_service_on_store_backed_docs(self, tmp_path, executor):
        """Sharded pools over reopened documents stay byte-identical; the
        process payload ships bundle paths, not arrays."""
        xml = XMarkGenerator(scale=0.05, seed=13).xml()
        ws = Workspace()
        ws.add("xmark", xml)
        ws.save(str(tmp_path))
        ws.close()

        served = Workspace()
        served.open_store(str(tmp_path))
        try:
            serial = served.select_many(QUERY_MIX_XMARK, document="xmark")
            parallel = served.select_many(
                QUERY_MIX_XMARK, document="xmark", jobs=2, executor=executor
            )
            assert parallel == serial
            service = served.service(jobs=2, executor=executor)
            entry = service._payload_entry("xmark")
            assert entry[0] == "store"
            assert len(pickle.dumps(entry)) < 2000
        finally:
            served.close()


QUERY_MIX_XMARK = [
    "//keyword",
    "/site/regions//item",
    "//person[address]",
    "//description//emph",
]


class TestReviewRegressions:
    def test_save_rejects_flags_on_compiled_input(self, tmp_path):
        from repro.index.jumping import TreeIndex

        tree = BinaryTree.from_xml("<r><a/></r>")
        for compiled in (tree, TreeIndex(tree)):
            with pytest.raises(ValueError, match="already encoded"):
                save_document(
                    compiled,
                    os.path.join(str(tmp_path), "x"),
                    encode_text=True,
                )

    def test_workspace_save_validates_names_before_writing(self, tmp_path):
        ws = Workspace()
        ws.add("ok", "<r/>")
        ws.add(f"evil{os.sep}name", "<r/>")
        target = tmp_path / "corpus"
        with pytest.raises(ValueError, match="invalid document name"):
            ws.save(str(target))
        assert not target.exists()  # nothing written for any document

    def test_mmap_false_open_is_self_contained(self, tmp_path):
        import shutil

        bundle = os.path.join(str(tmp_path), "doc")
        save_document("<r><a/><a/></r>", bundle)
        loaded = open_document(bundle, mmap=False)
        assert getattr(loaded.index, "store_path", None) is None
        ws = Workspace()
        ws.add("doc", loaded)
        service = ws.service(jobs=2, executor="process")
        assert service._payload_entry("doc")[0] == "index"
        shutil.rmtree(bundle)  # storage goes away; in-memory copy serves on
        try:
            assert ws.select_many(["//a"], document="doc", jobs=2) == {
                "//a": [1, 2]
            }
        finally:
            ws.close()

    def test_pickle_preserves_mmap_flag(self, tmp_path):
        bundle = os.path.join(str(tmp_path), "doc")
        save_document("<r><a/></r>", bundle)
        loaded = open_document(bundle, mmap=False)
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone.header["_mmap"] is False
        assert getattr(clone.index, "store_path", None) is None

    def test_event_source_save_reuses_builder_parens(self, tmp_path):
        generator = XMarkGenerator(scale=0.02, seed=5)
        via_events = os.path.join(str(tmp_path), "ev")
        via_tree = os.path.join(str(tmp_path), "tr")
        save_document(generator, via_events)
        save_document(generator.tree(), via_tree)
        for name in ("bp_packed", "label_of", "xml_end"):
            a = np.load(os.path.join(via_events, f"{name}.npy"))
            b = np.load(os.path.join(via_tree, f"{name}.npy"))
            assert np.array_equal(a, b), name
        stored = open_document(via_events)
        assert Engine(stored).select("//edge") == Engine(
            generator.tree()
        ).select("//edge")

    def test_rebuild_crash_preserves_old_bundle(self, tmp_path, monkeypatch):
        import numpy as np

        bundle = os.path.join(str(tmp_path), "doc")
        save_document("<r><a/></r>", bundle)

        # A crash while rewriting arrays hits only the hidden staging
        # directory (atomic publish): the previous bundle stays intact,
        # readable, and verifiable, and no staging debris survives.
        original_save = np.save
        calls = []

        def crashing_save(path, arr):
            calls.append(path)
            if len(calls) == 3:
                raise RuntimeError("simulated crash mid-rebuild")
            return original_save(path, arr)

        monkeypatch.setattr(np, "save", crashing_save)
        with pytest.raises(RuntimeError):
            save_document("<r><b/><b/></r>", bundle)
        monkeypatch.undo()
        assert Engine(open_document(bundle)).select("//a") == [1]
        from repro.store import verify_document

        assert verify_document(bundle, deep=True)["ok"] is True
        assert os.listdir(str(tmp_path)) == ["doc"]

    def test_path_for_rejects_any_separator_style(self, tmp_path):
        store = DocumentStore(str(tmp_path))
        for name in ("a/b", "a\\b", "x/../../evil", ".", ".."):
            with pytest.raises(ValueError, match="invalid document name"):
                store.path_for(name)

    def test_engine_accepts_event_sources(self):
        generator = XMarkGenerator(scale=0.02, seed=5)
        assert Engine(generator).select("//edge") == Engine(
            generator.tree()
        ).select("//edge")

    def test_resave_of_reopened_document(self, tmp_path):
        first = os.path.join(str(tmp_path), "first")
        second = os.path.join(str(tmp_path), "second")
        save_document("<r><a><b/></a></r>", first)
        save_document(open_document(first), second)
        assert Engine(open_document(second)).select("//b") == [2]


class TestStoredDocumentClose:
    def test_close_releases_mapped_arrays(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a><b/></a></r>")
        mmaps = [
            arr._mmap
            for arr in stored._mapped
            if getattr(arr, "_mmap", None) is not None
        ]
        assert mmaps  # the bundle really was mmapped
        stored.close()
        assert stored.closed
        assert all(mm.closed for mm in mmaps)

    def test_close_is_idempotent(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a/></r>")
        stored.close()
        stored.close()
        assert stored.closed

    def test_closed_document_refuses_queries(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a/></r>")
        stored.close()
        with pytest.raises(StoreError, match="closed"):
            stored.succinct()

    def test_context_manager_closes(self, tmp_path):
        with _roundtrip(tmp_path, "<r><a/></r>") as stored:
            assert Engine(stored).select("//a") == [1]
        assert stored.closed

    def test_materialized_open_close_is_a_noop(self, tmp_path):
        bundle = os.path.join(str(tmp_path), "doc")
        save_document("<r><a/></r>", bundle)
        stored = open_document(bundle, mmap=False)
        stored.close()  # nothing mapped, still fine
        assert stored.closed


class TestWorkspaceClose:
    def test_close_releases_store_handles(self, tmp_path):
        ws = Workspace()
        ws.add("doc", "<r><a><b/></a></r>")
        ws.save(str(tmp_path))
        ws.close()

        ws2 = Workspace()
        ws2.open_store(str(tmp_path))
        stored = ws2._stored["doc"]
        mmaps = [
            arr._mmap
            for arr in stored._mapped
            if getattr(arr, "_mmap", None) is not None
        ]
        assert ws2.select("//b", document="doc") == [2]
        ws2.close()
        assert stored.closed
        assert all(mm.closed for mm in mmaps)
        assert ws2.documents() == []

    def test_context_manager(self, tmp_path):
        ws = Workspace()
        ws.add("doc", "<r><a/></r>")
        ws.save(str(tmp_path))
        ws.close()
        with Workspace() as ws2:
            ws2.open_store(str(tmp_path))
            stored = ws2._stored["doc"]
            assert ws2.select("//a", document="doc") == [1]
        assert stored.closed

    def test_remove_closes_stored_document(self, tmp_path):
        ws = Workspace()
        ws.add("doc", "<r><a/></r>")
        ws.save(str(tmp_path))
        ws.close()
        ws2 = Workspace()
        ws2.open_store(str(tmp_path))
        stored = ws2._stored["doc"]
        ws2.remove("doc")
        assert stored.closed
        assert "doc" not in ws2._stored
        ws2.close()

    def test_added_documents_are_caller_owned(self, tmp_path):
        stored = _roundtrip(tmp_path, "<r><a/></r>")
        ws = Workspace()
        ws.add("doc", stored)
        ws.close()
        # add()-ed documents are the caller's to close.
        assert not stored.closed
        assert Engine(stored).select("//a") == [1]
        stored.close()
