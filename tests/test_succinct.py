"""Succinct tree: operations must agree with the pointer BinaryTree."""

from hypothesis import given, settings

from repro.index.succinct import SuccinctTree
from repro.tree.binary import NIL, BinaryTree
from repro.tree.parser import parse_xml

from strategies import binary_trees


def both(xml: str):
    tree = BinaryTree.from_xml(xml)
    return tree, SuccinctTree.from_binary(tree)


class TestSmall:
    def test_single_node(self):
        tree, succ = both("<a/>")
        assert succ.n == 1
        assert succ.label(0) == "a"
        assert succ.first_child(0) == NIL
        assert succ.next_sibling(0) == NIL
        assert succ.parent(0) == NIL
        assert succ.subtree_size(0) == 1

    def test_basic_navigation(self):
        tree, succ = both("<a><b/><c><e/></c><d/></a>")
        assert succ.first_child(0) == 1
        assert succ.next_sibling(1) == 2
        assert succ.first_child(2) == 3
        assert succ.next_sibling(2) == 4
        assert succ.parent(3) == 2
        assert succ.parent(1) == 0
        assert succ.subtree_size(0) == 5
        assert succ.subtree_size(2) == 2
        assert succ.xml_end(2) == 4

    def test_findclose_enclose(self):
        _, succ = both("<a><b/><c/></a>")  # ( ( ) ( ) )
        assert succ.findclose(0) == 5
        assert succ.findclose(1) == 2
        assert succ.enclose(1) == 0
        assert succ.enclose(3) == 0
        assert succ.enclose(0) == -1

    def test_from_document_matches_from_binary(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        tree = BinaryTree.from_document(doc)
        s1 = SuccinctTree.from_document(doc)
        s2 = SuccinctTree.from_binary(tree)
        for v in range(tree.n):
            assert s1.label(v) == s2.label(v)
            assert s1.first_child(v) == s2.first_child(v)
            assert s1.next_sibling(v) == s2.next_sibling(v)

    def test_memory_accounting_positive(self):
        tree, succ = both("<a><b/><c/></a>")
        assert succ.memory_bytes() > 0
        assert SuccinctTree.pointer_memory_bytes(tree) > succ.memory_bytes()


class TestEquivalenceWithPointerTree:
    @given(binary_trees(max_depth=5, max_children=5))
    @settings(max_examples=40)
    def test_all_operations_agree(self, tree: BinaryTree):
        succ = SuccinctTree.from_binary(tree)
        assert succ.n == tree.n
        for v in range(tree.n):
            assert succ.label(v) == tree.label(v)
            assert succ.first_child(v) == tree.left[v]
            assert succ.next_sibling(v) == tree.right[v]
            assert succ.parent(v) == tree.parent[v]
            assert succ.xml_end(v) == tree.xml_end[v]
            assert succ.is_leaf(v) == (tree.left[v] == NIL)

    def test_large_flat_tree_crosses_blocks(self):
        # 2000 children: BP sequence of 4002 bits spans many 256-bit blocks.
        tree = BinaryTree.from_xml("<r>" + "<x/>" * 2000 + "</r>")
        succ = SuccinctTree.from_binary(tree)
        assert succ.findclose(0) == 2 * tree.n - 1
        assert succ.parent(1500) == 0
        assert succ.next_sibling(1) == 2
        assert succ.subtree_size(0) == tree.n

    def test_deep_tree_crosses_blocks(self):
        depth = 1500
        xml = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        tree = BinaryTree.from_xml(xml)
        succ = SuccinctTree.from_binary(tree)
        assert succ.parent(depth - 1) == depth - 2
        assert succ.subtree_size(0) == depth
        assert succ.findclose(0) == 2 * depth - 1


class TestRoundTrip:
    def test_to_binary_reconstructs_pointers(self):
        tree = BinaryTree.from_xml("<a><b><c/></b><d><e/><f/></d></a>")
        back = SuccinctTree.from_binary(tree).to_binary()
        assert back.left == tree.left
        assert back.right == tree.right
        assert back.parent == tree.parent
        assert back.xml_end == tree.xml_end
        assert back.labels == tree.labels

    def test_queries_over_succinct_backend(self):
        from repro.engine.api import Engine
        from repro.xmark.generator import XMarkGenerator

        doc = XMarkGenerator(scale=0.05, seed=9).document()
        direct = Engine(doc)
        via_succinct = Engine(SuccinctTree.from_document(doc).to_binary())
        for query in ("//keyword", "/site/regions", "//listitem//keyword"):
            assert via_succinct.select(query) == direct.select(query)
