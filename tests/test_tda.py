"""Top-down approximation (Definition 4.2): the Figure 1 jump table."""

from repro.asta.tda import TDAAnalysis
from repro.tree.binary import BinaryTree
from repro.xpath.compiler import compile_xpath


def analysis_for(query: str, xml: str = "<x><a><b><c/></b></a></x>"):
    asta = compile_xpath(query)
    tree = BinaryTree.from_xml(xml)
    return asta, TDAAnalysis(asta, tree)


class TestFigure1:
    """tda(A_//a//b[c]) must reproduce Figure 1's transition table."""

    def q(self, asta, suffix):
        (match,) = [s for s in asta.states if s.endswith(suffix)]
        return match

    def test_initial_set_on_a(self):
        asta, tda = analysis_for("//a//b[c]")
        qa = self.q(asta, "_a")
        qb = self.q(asta, "_b")
        s0 = frozenset({qa})
        s1, s2 = tda.run_approximation(s0, "a")
        assert s1 == {qa, qb}  # {q0} --a--> ({q0,q1}, {q0})
        assert s2 == {qa}

    def test_initial_set_loops_elsewhere(self):
        asta, tda = analysis_for("//a//b[c]")
        qa = self.q(asta, "_a")
        s0 = frozenset({qa})
        for label in ("b", "c", "x"):
            assert tda.run_approximation(s0, label) == (s0, s0)

    def test_second_set_on_b(self):
        asta, tda = analysis_for("//a//b[c]")
        qa, qb, qc = (self.q(asta, s) for s in ("_a", "_b", "_c"))
        s1 = frozenset({qa, qb})
        s1l, s1r = tda.run_approximation(s1, "b")
        assert s1l == {qa, qb, qc}  # progress spawns the predicate state
        assert s1r == {qa, qb}

    def test_third_set_returns_after_c(self):
        asta, tda = analysis_for("//a//b[c]")
        qa, qb, qc = (self.q(asta, s) for s in ("_a", "_b", "_c"))
        s2 = frozenset({qa, qb, qc})
        # Figure 1: {q0,q1,q2}, {c} -> ({q0,q1}, {q0,q1,q2})
        s2l, s2r = tda.run_approximation(s2, "c")
        assert s2l == {qa, qb}
        assert s2r == {qa, qb, qc}

    def test_jump_plans(self):
        asta, tda = analysis_for("//a//b[c]")
        qa, qb, qc = (self.q(asta, s) for s in ("_a", "_b", "_c"))
        info0 = tda.info(frozenset({qa}))
        assert info0.jump_shape == "both"
        assert info0.essential_names == {"a"}
        info1 = tda.info(frozenset({qa, qb}))
        assert info1.jump_shape == "both"
        # The paper's Figure 1 keeps jumping to b only; our analysis is
        # slightly more conservative and also visits nested a-nodes (their
        # progress transition is not of the identity shape).  This is
        # sound and costs only the nested-pivot visits.
        assert info1.essential_names == {"a", "b"}
        # {q0,q1,q2}: every label is essential -> no jump (paper: "no jump
        # is possible, the automaton must perform firstChild/nextSibling").
        info2 = tda.info(frozenset({qa, qb, qc}))
        assert info2.jump_shape == "none"

    def test_early_stop_only_for_non_marking_sets(self):
        asta, tda = analysis_for("//a//b[c]")
        qa, qc = self.q(asta, "_a"), self.q(asta, "_c")
        assert not tda.info(frozenset({qa})).early_stop  # can still select
        assert tda.info(frozenset({qc})).early_stop  # pure predicate state

    def test_cache_grows_once_per_set(self):
        asta, tda = analysis_for("//a//b[c]")
        qa = self.q(asta, "_a")
        before = tda.cache_size()
        tda.info(frozenset({qa}))
        tda.info(frozenset({qa}))
        assert tda.cache_size() == before + 1


class TestSkipSafety:
    def test_spontaneous_formulas_make_labels_essential(self):
        # //a[not(b)]: at an a-node the formula ¬↓1 qb can be true with no
        # accepting child at all, so 'a' must be essential (it is: state
        # change), and crucially the *pred-scan* state set containing the
        # negation's target still jumps only to real obligations.
        asta, tda = analysis_for("//a[not(b)]")
        top = frozenset(asta.top)
        info = tda.info(top)
        assert "a" in info.essential_names

    def test_child_axis_state_is_right_spine(self):
        asta, tda = analysis_for("//a/b")
        (qb,) = [s for s in asta.states if s.endswith("chil_b")]
        info = tda.info(frozenset({qb}))
        # Scan state of a child step loops via ↓2 only.
        rep = tda.atom_rep("zzz")
        atom = info.per_atom[rep]
        assert atom.skip_class in ("right", "ess")
