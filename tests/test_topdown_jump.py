"""topdown_jump (Algorithm B.1) against Theorem 3.1."""

from hypothesis import given, settings

from repro.automata.examples import sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.labelset import ANY, LabelSet
from repro.automata.minimize import complete_topdown
from repro.automata.relevance import topdown_relevant
from repro.automata.sta import STA, Transition
from repro.automata.topdown import topdown_jump
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree

from strategies import binary_trees


def jump(sta, spec_or_tree, stats=None):
    tree = (
        spec_or_tree
        if isinstance(spec_or_tree, BinaryTree)
        else BinaryTree.from_spec(spec_or_tree)
    )
    return topdown_jump(sta, TreeIndex(tree), stats), tree


def child_check_automaton() -> STA:
    """/a[b]-style: root must be a with a b child (loop_right shape).

    q1 scans the right spine of a's first child looking for b; it is NOT a
    bottom state, so running off the spine without a b rejects.  Completed
    with a sink so non-a roots reject instead of erroring.
    """
    return complete_topdown(STA(
        states=["q0", "q1", "qT"],
        top=["q0"],
        bottom=["qT"],
        selecting={"q0": LabelSet.of("a")},
        transitions=[
            Transition("q0", LabelSet.of("a"), "q1", "qT"),
            Transition("q1", LabelSet.of("b"), "qT", "qT"),
            Transition("q1", LabelSet.not_of("b"), "qT", "q1"),
            Transition("qT", ANY, "qT", "qT"),
        ],
    ))


class TestExactness:
    def test_dtd_visits_only_root(self):
        rec = complete_topdown(sta_dtd_root_a())
        stats = EvalStats()
        run, tree = jump(rec, ("a", "b", ("c", "d"), "e"), stats)
        assert set(run) == {0}
        assert stats.visited == 1

    def test_dtd_rejecting_gives_empty(self):
        rec = complete_topdown(sta_dtd_root_a())
        run, _ = jump(rec, ("b", "a"))
        assert run == {}

    def test_example21_visits_exactly_relevant(self):
        sta = sta_desc_a_desc_b()
        t = BinaryTree.from_spec(("r", ("a", "b", "c"), "x", ("a", "b")))
        run, _ = jump(sta, t)
        assert frozenset(run) == topdown_relevant(sta, t)

    def test_example21_run_values_match_full_run(self):
        sta = sta_desc_a_desc_b()
        t = BinaryTree.from_spec(("r", ("a", ("b", "b")), "c"))
        run, _ = jump(sta, t)
        full = sta.deterministic_topdown_run(t)
        for v, q in run.items():
            assert full[v] == q

    @given(binary_trees(labels=("a", "b", "c", "d")))
    @settings(max_examples=60)
    def test_theorem_31_on_example21(self, t):
        sta = sta_desc_a_desc_b()
        run = topdown_jump(sta, TreeIndex(t))
        relevant = topdown_relevant(sta, t)
        assert relevant is not None  # this automaton accepts everything
        assert frozenset(run) == relevant
        full = sta.deterministic_topdown_run(t)
        for v, q in run.items():
            assert full[v] == q

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=60)
    def test_theorem_31_on_dtd_recognizer(self, t):
        rec = complete_topdown(sta_dtd_root_a())
        run = topdown_jump(rec, TreeIndex(t))
        relevant = topdown_relevant(rec, t)
        if relevant is None:
            assert run == {}
        else:
            assert frozenset(run) == relevant


class TestAcceptanceChecking:
    """Skipping must never silently accept what the full run rejects."""

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=80)
    def test_rejection_detected_with_right_spine_states(self, t):
        sta = child_check_automaton()
        run = topdown_jump(sta, TreeIndex(t))
        full = sta.deterministic_topdown_run(t)
        if full is None:
            assert run == {}
        else:
            assert run != {} or t.n == 0
            for v, q in run.items():
                assert full[v] == q

    def test_a_with_b_child_accepted(self):
        sta = child_check_automaton()
        run, _ = jump(sta, ("a", "x", "b"))
        assert run and run[0] == "q0"

    def test_a_without_b_child_rejected(self):
        sta = child_check_automaton()
        run, _ = jump(sta, ("a", "x", "y"))
        assert run == {}

    def test_leaf_a_rejected(self):
        # q1 must be verified on the (empty) child spine: # gets q1 ∉ B.
        sta = child_check_automaton()
        run, _ = jump(sta, "a")
        assert run == {}


class TestStats:
    def test_visited_no_more_than_nodes(self):
        sta = sta_desc_a_desc_b()
        stats = EvalStats()
        _, tree = jump(sta, ("r", ("a", "b"), "c", "d", "e"), stats)
        assert stats.visited <= tree.n
        assert stats.jumps > 0
