"""Unit and property tests for the fcns BinaryTree encoding."""

from hypothesis import given, settings

from repro.tree.binary import NIL, BinaryTree
from repro.tree.parser import parse_xml

from strategies import binary_trees


def spec_tree() -> BinaryTree:
    #        a
    #      / | \
    #     b  c  d
    #        |
    #        e
    return BinaryTree.from_spec(("a", "b", ("c", "e"), "d"))


class TestConstruction:
    def test_ids_are_document_order(self):
        t = spec_tree()
        assert [t.label(v) for v in range(t.n)] == ["a", "b", "c", "e", "d"]

    def test_first_child_next_sibling(self):
        t = spec_tree()
        assert t.first_child(0) == 1  # a -> b
        assert t.next_sibling(1) == 2  # b -> c
        assert t.first_child(2) == 3  # c -> e
        assert t.next_sibling(2) == 4  # c -> d
        assert t.next_sibling(4) == NIL
        assert t.first_child(1) == NIL

    def test_parent(self):
        t = spec_tree()
        assert t.parent == [NIL, 0, 0, 2, 0]

    def test_binary_parent(self):
        t = spec_tree()
        # left-child edges: a->b, c->e; right-child: b->c, c->d
        assert t.bparent[1] == 0
        assert t.bparent[2] == 1
        assert t.bparent[3] == 2
        assert t.bparent[4] == 2

    def test_xml_end_ranges(self):
        t = spec_tree()
        assert t.xml_end == [5, 2, 4, 4, 5]

    def test_from_xml(self):
        t = BinaryTree.from_xml("<a><b/><c><e/></c><d/></a>")
        assert [t.label(v) for v in range(t.n)] == ["a", "b", "c", "e", "d"]

    def test_single_node(self):
        t = BinaryTree.from_spec("only")
        assert t.n == 1
        assert t.is_binary_leaf(0)
        assert t.bend(0) == 1


class TestNavigation:
    def test_children_iteration(self):
        t = spec_tree()
        assert list(t.children(0)) == [1, 2, 4]
        assert list(t.children(2)) == [3]
        assert list(t.children(1)) == []

    def test_bend_is_binary_subtree_end(self):
        t = spec_tree()
        # binary subtree of b (id 1) = b, c, e, d -> [1, 5)
        assert t.bend(1) == 5
        # binary subtree of e (id 3) = just e -> [3, 4)
        assert t.bend(3) == 4

    def test_xml_descendants(self):
        t = spec_tree()
        assert list(t.xml_descendants(0)) == [1, 2, 3, 4]
        assert list(t.xml_descendants(2)) == [3]

    def test_ancestors(self):
        t = spec_tree()
        assert list(t.ancestors(3)) == [2, 0]
        assert list(t.ancestors(0)) == []

    def test_depth_and_height(self):
        t = spec_tree()
        assert t.depth(0) == 0
        assert t.depth(3) == 2
        assert t.height() == 2

    def test_label_histogram(self):
        t = BinaryTree.from_spec(("a", "b", ("b", "a")))
        assert t.label_histogram() == {"a": 2, "b": 2}

    def test_label_id(self):
        t = spec_tree()
        assert t.label_id("a") == 0
        assert t.label_id("nope") is None


class TestEncodingProperties:
    @given(binary_trees())
    @settings(max_examples=60)
    def test_fcns_edges_are_consistent(self, t: BinaryTree):
        for v in range(t.n):
            lc = t.left[v]
            if lc != NIL:
                assert lc == v + 1  # first child is the next preorder id
                assert t.parent[lc] == v
            rc = t.right[v]
            if rc != NIL:
                assert rc == t.xml_end[v]
                assert t.parent[rc] == t.parent[v]

    @given(binary_trees())
    @settings(max_examples=60)
    def test_xml_end_equals_subtree_size(self, t: BinaryTree):
        for v in range(t.n):
            size = 1 + sum(
                t.xml_end[c] - c for c in t.children(v)
            )
            assert t.xml_end[v] - v == size

    @given(binary_trees())
    @settings(max_examples=60)
    def test_binary_subtree_partition(self, t: BinaryTree):
        # Children of v: left child's binary subtree is exactly the XML
        # descendants of v.
        for v in range(t.n):
            lc = t.left[v]
            if lc != NIL:
                assert (lc, t.bend(lc)) == (v + 1, t.xml_end[v])

    @given(binary_trees())
    @settings(max_examples=60)
    def test_bparent_inverts_child_edges(self, t: BinaryTree):
        for v in range(1, t.n):
            p = t.bparent[v]
            assert p != NIL
            assert t.left[p] == v or t.right[p] == v
