"""Unit tests for the XMLNode/XMLDocument model."""

from repro.tree.document import XMLDocument, XMLNode


def build_sample() -> XMLDocument:
    root = XMLNode("site")
    a = root.new_child("a")
    a.new_child("x")
    b = a.new_child("b")
    root.new_child("b")
    return XMLDocument(root)


class TestXMLNode:
    def test_append_sets_parent(self):
        parent = XMLNode("p")
        child = XMLNode("c")
        assert parent.append(child) is child
        assert child.parent is parent
        assert parent.children == [child]

    def test_new_child_with_attributes(self):
        parent = XMLNode("p")
        child = parent.new_child("c", x="1", y="2")
        assert child.attributes == {"x": "1", "y": "2"}

    def test_preorder_is_document_order(self):
        doc = build_sample()
        labels = [n.label for n in doc.preorder()]
        assert labels == ["site", "a", "x", "b", "b"]

    def test_descendants_excludes_self(self):
        doc = build_sample()
        labels = [n.label for n in doc.root.descendants()]
        assert labels == ["a", "x", "b", "b"]

    def test_size(self):
        assert build_sample().size() == 5

    def test_depth_of_leaf_is_one(self):
        assert XMLNode("x").depth() == 1

    def test_depth_nested(self):
        assert build_sample().root.depth() == 3

    def test_find_all(self):
        doc = build_sample()
        assert [n.label for n in doc.root.find_all("b")] == ["b", "b"]
        assert doc.root.find_all("missing") == []

    def test_repr_mentions_label(self):
        assert "site" in repr(XMLNode("site"))


class TestXMLDocument:
    def test_label_counts(self):
        counts = build_sample().label_counts()
        assert counts == {"site": 1, "a": 1, "x": 1, "b": 2}

    def test_repr(self):
        doc = build_sample()
        assert "site" in repr(doc)
        assert "5" in repr(doc)
