"""Unit tests for the dependency-free XML parser."""

import pytest

from repro.tree.parser import XMLSyntaxError, parse_xml


class TestBasicParsing:
    def test_single_empty_element(self):
        doc = parse_xml("<a/>")
        assert doc.root.label == "a"
        assert doc.root.children == []

    def test_open_close(self):
        doc = parse_xml("<a></a>")
        assert doc.root.label == "a"

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert [c.label for c in doc.root.children] == ["b", "d"]
        assert doc.root.children[0].children[0].label == "c"

    def test_attributes(self):
        doc = parse_xml('<a x="1" y=\'two\'/>')
        assert doc.root.attributes == {"x": "1", "y": "two"}

    def test_text_content(self):
        doc = parse_xml("<a>hello world</a>")
        assert doc.root.text == "hello world"

    def test_mixed_content_text_collected(self):
        doc = parse_xml("<a>pre<b/>post</a>")
        assert doc.root.text == "prepost"
        assert doc.root.children[0].label == "b"

    def test_whitespace_between_elements(self):
        doc = parse_xml("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.label for c in doc.root.children] == ["b", "c"]

    def test_names_with_punctuation(self):
        doc = parse_xml("<closed_auction><ns:item/></closed_auction>")
        assert doc.root.children[0].label == "ns:item"


class TestEntitiesAndSections:
    def test_standard_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text == "<>&'\""

    def test_numeric_entities(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.root.text == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a x="&amp;b"/>')
        assert doc.root.attributes["x"] == "&b"

    def test_cdata(self):
        doc = parse_xml("<a><![CDATA[<not><parsed>&amp;]]></a>")
        assert doc.root.text == "<not><parsed>&amp;"

    def test_comments_skipped(self):
        doc = parse_xml("<!-- head --><a><!-- inner --><b/></a><!-- tail -->")
        assert [c.label for c in doc.root.children] == ["b"]

    def test_processing_instructions_skipped(self):
        doc = parse_xml("<?xml version='1.0'?><a><?pi data?><b/></a>")
        assert [c.label for c in doc.root.children] == ["b"]

    def test_doctype_skipped(self):
        doc = parse_xml("<!DOCTYPE a [<!ELEMENT a ANY>]><a/>")
        assert doc.root.label == "a"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&nope;</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a x=1/>",
            "<a x='1/>",
            "< a/>",
            "<a>text",
            "<!-- unterminated <a/>",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as exc:
            parse_xml("<a></b>")
        assert exc.value.position > 0


class TestScale:
    def test_deep_sibling_chain_no_recursion_error(self):
        text = "<r>" + "<x/>" * 50_000 + "</r>"
        doc = parse_xml(text)
        assert len(doc.root.children) == 50_000

    def test_deep_nesting(self):
        depth = 2_000
        text = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        doc = parse_xml(text)
        assert doc.size() == depth


class TestMalformedCharacterReferences:
    """&#...; payloads must fail as XMLSyntaxError, never a bare ValueError."""

    @pytest.mark.parametrize(
        "ref",
        [
            "&#xZZZ;",       # non-hex digits
            "&#abc;",        # non-decimal digits
            "&#;",           # empty decimal
            "&#x;",          # empty hex
            "&#x110000;",    # beyond U+10FFFF
            "&#1114112;",    # beyond U+10FFFF, decimal
            "&#xD800;",      # surrogate low bound
            "&#xDFFF;",      # surrogate high bound
            "&#55296;",      # surrogate, decimal
            "&#-5;",         # negative
        ],
    )
    def test_rejected_with_offset(self, ref):
        for xml in (f"<a>{ref}</a>", f"<a x='{ref}'/>"):
            with pytest.raises(XMLSyntaxError) as excinfo:
                parse_xml(xml)
            assert excinfo.value.position == xml.index("&")

    def test_valid_boundaries_still_accepted(self):
        doc = parse_xml("<a>&#x10FFFF;&#xD7FF;&#xE000;&#0;</a>")
        assert doc.root.text == "\U0010ffff퟿\x00"


class TestEventAPI:
    def test_event_stream_shape(self):
        from repro.tree.parser import parse_events

        events = []

        class Recorder:
            def start_element(self, name, attrs):
                events.append(("start", name, attrs))

            def characters(self, data):
                events.append(("chars", data))

            def end_element(self, name):
                events.append(("end", name))

        parse_events("<a x='1'>hi<b/> <!--c--></a>", Recorder())
        assert events == [
            ("start", "a", {"x": "1"}),
            ("chars", "hi"),
            ("start", "b", None),
            ("end", "b"),
            ("chars", " "),
            ("end", "a"),
        ]
