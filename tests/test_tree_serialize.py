"""Serialization round-trip tests."""

from hypothesis import given, settings

from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.tree.serialize import to_xml

from strategies import tree_specs


class TestSerialize:
    def test_empty_element(self):
        assert to_xml(parse_xml("<a/>")) == "<a/>"

    def test_attributes_escaped(self):
        text = to_xml(parse_xml('<a x="&amp;&quot;1"/>'))
        assert text == '<a x="&amp;&quot;1"/>'

    def test_text_escaped(self):
        assert to_xml(parse_xml("<a>&lt;x&gt;&amp;</a>")) == "<a>&lt;x&gt;&amp;</a>"

    def test_nested(self):
        assert to_xml(parse_xml("<a><b/><c><d/></c></a>")) == "<a><b/><c><d/></c></a>"

    def test_pretty_print_indents(self):
        text = to_xml(parse_xml("<a><b/></a>"), indent=2)
        assert text == "<a>\n  <b/>\n</a>\n"

    def test_roundtrip_fixed(self):
        original = "<site><a x=\"1\"><b/>text</a><c/></site>"
        doc = parse_xml(original)
        again = parse_xml(to_xml(doc))
        assert to_xml(again) == to_xml(doc)

    @given(tree_specs())
    @settings(max_examples=50)
    def test_roundtrip_random_structure(self, spec):
        tree = BinaryTree.from_spec(spec)
        from repro.tree.document import XMLDocument, XMLNode

        def rebuild(v):
            node = XMLNode(tree.label(v))
            for c in tree.children(v):
                node.append(rebuild(c))
            return node

        doc = XMLDocument(rebuild(0))
        reparsed = BinaryTree.from_document(parse_xml(to_xml(doc)))
        assert [reparsed.label(v) for v in range(reparsed.n)] == [
            tree.label(v) for v in range(tree.n)
        ]
        assert reparsed.parent == tree.parent
