"""The window-join strategy (repro.engine.window): XPath accelerator.

Pins the pre/post encoding identities, each axis join against the
reference evaluator, native backward axes, predicate window counts, the
optional ``post`` store column (round trip + legacy bundles), sharded /
pooled execution identity, planner integration, and the depth-bucket
LRU's bound.
"""

import json
import os

import numpy as np
import pytest

from repro.counters import EvalStats
from repro.engine import window
from repro.engine.api import Engine
from repro.engine.parallel import QueryService
from repro.engine.registry import get_strategy, resolve
from repro.engine.window import (
    DepthBuckets,
    WindowEncoding,
    get_encoding,
    is_window_evaluable,
)
from repro.engine.workspace import Workspace
from repro.index.jumping import TreeIndex, postorder_from_xml_end
from repro.store import open_document, save_document
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

XML = (
    "<site>"
    "<a><x/><b/><c><b/><d/></c></a>"
    "<b><a><b/></a></b>"
    "<keyword/>"
    "<listitem><text><keyword><emph/></keyword></text></listitem>"
    "</site>"
)

FORWARD_QUERIES = [
    "/site",
    "/site/a/b",
    "//b",
    "//a//b",
    "//*",
    "//node()",
    "/site/*/b",
    "//a[b]",
    "//a[.//b and c]",
    "//a[not(b)]",
    "//b[not(.//a) or x]",
    "//c/following-sibling::b",
    "/site/a/b/following-sibling::node()",
    "//listitem[.//keyword and .//emph]",
    "//a[/site/keyword]",
    "//missing",
    "//a[missing]",
    "//keyword[.]",
]

BACKWARD_QUERIES = [
    "//b/parent::a",
    "//b/parent::node()",
    "//b/ancestor::a",
    "//emph/ancestor::node()",
    "//b/ancestor::a/c",
    "//d/parent::c/b",
    "//b[parent::a]",
    "//b[ancestor::site]",
    "//a[b/parent::a]",
    "//c[d]/b/ancestor::a",
    "//keyword[not(ancestor::text)]",
    "//b[following-sibling::c]",
]


@pytest.fixture(scope="module")
def index():
    return TreeIndex(BinaryTree.from_document(parse_xml(XML)))


class TestEncoding:
    def test_postorder_matches_recursive_definition(self, index):
        tree = index.tree
        post = np.empty(tree.n, dtype=np.int64)
        clock = 0

        def visit(v):
            nonlocal clock
            child = tree.left[v]
            while child != -1:
                visit(child)
                child = tree.right[child]
            post[v] = clock
            clock += 1

        visit(0)
        derived = postorder_from_xml_end(index.xml_end_array())
        assert derived.tolist() == post.tolist()

    def test_depth_identity(self, index):
        tree = index.tree
        enc = get_encoding(index)
        for v in range(tree.n):
            d, u = 0, v
            while tree.parent[u] != -1:
                u = tree.parent[u]
                d += 1
            assert int(enc.depth[v]) == d

    def test_ancestor_iff_window_dominates(self, index):
        """The defining property: u is a proper ancestor of v iff
        pre(u) < pre(v) and post(u) > post(v)."""
        tree = index.tree
        enc = get_encoding(index)

        def is_ancestor(u, v):
            while tree.parent[v] != -1:
                v = tree.parent[v]
                if v == u:
                    return True
            return False

        for u in range(tree.n):
            for v in range(tree.n):
                window_says = u < v and enc.post[u] > enc.post[v]
                assert window_says == is_ancestor(u, v), (u, v)

    def test_depth_buckets_partition(self, index):
        enc = get_encoding(index)
        cand = np.arange(index.tree.n, dtype=np.int64)
        buckets = DepthBuckets(cand, enc.depth)
        seen = []
        for d in buckets.depths:
            sub = buckets.at(int(d))
            assert (enc.depth[sub] == d).all()
            assert (np.diff(sub) > 0).all()  # preorder-sorted
            seen.extend(sub.tolist())
        assert sorted(seen) == cand.tolist()
        assert buckets.at(999).size == 0

    def test_encoding_cached_on_index(self, index):
        assert get_encoding(index) is get_encoding(index)


class TestOracleIdentity:
    @pytest.mark.parametrize("query", FORWARD_QUERIES + BACKWARD_QUERIES)
    def test_matches_reference(self, index, query):
        path = parse_xpath(query)
        expected = evaluate_reference(index.tree, path)
        accepted, got = window.evaluate(path, index)
        assert got == expected
        assert accepted == bool(expected)

    def test_matches_reference_on_encoded_doc(self):
        tree = BinaryTree.from_document(
            parse_xml('<r a="1"><x b="2">text</x><y>more</y></r>'),
            encode_attributes=True,
            encode_text=True,
        )
        index = TreeIndex(tree)
        for query in (
            "//x[@b]",
            "/r[@a]/x",
            "//@b",
            "//x/text()",
            "//*",
            "//node()",
            "/r/*[text()]",
            "//@b/parent::x",
            "//x[@b]/ancestor::r",
        ):
            path = parse_xpath(query)
            _, got = window.evaluate(path, index)
            assert got == evaluate_reference(tree, path), query

    def test_degenerate_single_node_document(self):
        index = TreeIndex(BinaryTree.from_spec("r"))
        assert window.evaluate(parse_xpath("/r"), index) == (True, [0])
        assert window.evaluate(parse_xpath("/x"), index) == (False, [])
        assert window.evaluate(parse_xpath("//r[x]"), index) == (False, [])
        assert window.evaluate(parse_xpath("//r/ancestor::r"), index) == (
            False,
            [],
        )

    def test_fig4_mix_on_xmark(self, xmark_index):
        from repro.xmark.queries import QUERIES as FIG4

        naive = Engine(xmark_index, strategy="naive")
        for qid, query in FIG4.items():
            expected = list(naive.prepare(query).execute().ids)
            _, got = window.evaluate(parse_xpath(query), xmark_index)
            assert got == expected, qid

    def test_results_sorted_and_unique(self, index):
        _, ids = window.evaluate(parse_xpath("//a//b"), index)
        assert ids == sorted(set(ids))
        assert all(isinstance(v, int) for v in ids)


class TestFragment:
    def test_supports_every_absolute_path(self):
        strategy = get_strategy("window")
        assert strategy.supports(parse_xpath("//a//b[c]"))
        assert strategy.supports(parse_xpath("/a/following-sibling::b"))
        # Backward axes are native here -- the vectorized fragment's gap.
        assert strategy.supports(parse_xpath("//a/parent::b"))
        assert strategy.supports(parse_xpath("//b/ancestor::a"))
        assert not strategy.supports(parse_xpath("a/b"))  # relative

    def test_relative_path_resolves_to_optimized(self):
        assert resolve("window", parse_xpath("a/b")).name == "optimized"

    def test_backward_absolute_stays_window(self):
        assert resolve("window", parse_xpath("//a/parent::b")).name == "window"

    def test_evaluate_rejects_relative_queries(self, index):
        with pytest.raises(ValueError, match="window-join fragment"):
            window.evaluate(parse_xpath("a/b"), index)

    def test_is_window_evaluable(self):
        assert is_window_evaluable(parse_xpath("//a"))
        assert not is_window_evaluable(parse_xpath("a"))

    def test_engine_integration(self, index):
        engine = Engine(index, strategy="window")
        assert engine.select("//a//b") == [3, 5, 9]
        plan = engine.prepare("//a//b")
        assert plan.strategy.name == "window"
        # Backward axes do NOT fall back to the mixed pipeline.
        backward = engine.prepare("//b/ancestor::a")
        assert backward.strategy.name == "window"
        assert backward.select() == evaluate_reference(
            index.tree, parse_xpath("//b/ancestor::a")
        )

    def test_explain_describes_native_backward_plan(self, index):
        engine = Engine(index, strategy="window")
        text = engine.prepare("//b/ancestor::a").explain()
        assert "reverse window containment" in text
        assert "mixed pipeline" not in text


class TestStoreColumn:
    def test_round_trip_persists_post(self, tmp_path):
        bundle = str(tmp_path / "doc")
        save_document(XML, bundle)
        header = json.load(open(os.path.join(bundle, "header.json")))
        assert "post" in header["arrays"]
        fresh = TreeIndex(BinaryTree.from_document(parse_xml(XML)))
        expected = fresh.post_array().tolist()
        stored = open_document(bundle)
        try:
            # The column arrives pre-seeded from the mapped file.
            assert stored.index._post_arr.tolist() == expected
            assert stored.index.post_array().tolist() == expected
            _, got = window.evaluate(
                parse_xpath("//b/ancestor::a"), stored.index
            )
            assert got == evaluate_reference(
                fresh.tree, parse_xpath("//b/ancestor::a")
            )
        finally:
            stored.close()

    def test_legacy_bundle_without_post_still_opens(self, tmp_path):
        """A bundle written before the column existed (same format v2,
        no ``post`` in the manifest) opens fine; the index re-derives
        the column on demand."""
        bundle = str(tmp_path / "doc")
        save_document(XML, bundle)
        os.remove(os.path.join(bundle, "post.npy"))
        header_path = os.path.join(bundle, "header.json")
        header = json.load(open(header_path))
        meta = header["arrays"].pop("post")
        assert meta["dtype"] == "int64"
        with open(header_path, "w") as handle:
            json.dump(header, handle)
        fresh = TreeIndex(BinaryTree.from_document(parse_xml(XML)))
        stored = open_document(bundle)
        try:
            assert getattr(stored.index, "_post_arr", None) is None
            assert (
                stored.index.post_array().tolist()
                == fresh.post_array().tolist()
            )
            for query in ("//a//b", "//b/ancestor::a"):
                _, got = window.evaluate(parse_xpath(query), stored.index)
                assert got == evaluate_reference(
                    fresh.tree, parse_xpath(query)
                )
        finally:
            stored.close()

    def test_deep_verify_covers_post(self, tmp_path):
        from repro.store.format import verify_bundle

        bundle = str(tmp_path / "doc")
        save_document(XML, bundle)
        report = verify_bundle(bundle, deep=True)
        assert "post" in report["arrays"]
        assert "crc32" in report["arrays"]["post"]


class TestParallelIdentity:
    SHARD_QUERIES = [
        "//a//b",
        "//c/following-sibling::b",
        "//b/ancestor::a",
        "//a[.//b and c]",
        "//listitem[.//keyword and .//emph]",
    ]

    @pytest.mark.parametrize("executor", ["thread", "pool"])
    def test_sharded_matches_reference(self, executor):
        ws = Workspace(strategy="window")
        ws.add("doc", XML)
        tree = ws.engine("doc").tree
        try:
            with QueryService(
                ws, jobs=2, shards=3, executor=executor
            ) as service:
                for query in self.SHARD_QUERIES:
                    got = list(service.execute(query, "doc").ids)
                    assert got == evaluate_reference(
                        tree, parse_xpath(query)
                    ), query
        finally:
            ws.close()

    def test_sharded_store_reopened(self, tmp_path):
        bundle = str(tmp_path / "doc")
        save_document(XML, bundle)
        ws = Workspace(strategy="window")
        stored = open_document(bundle)
        ws.add_stored("doc", stored)
        tree = stored.index.tree
        try:
            with QueryService(ws, jobs=2, shards=3) as service:
                for query in self.SHARD_QUERIES:
                    got = list(service.execute(query, "doc").ids)
                    assert got == evaluate_reference(
                        tree, parse_xpath(query)
                    ), query
        finally:
            ws.close()


class TestPlannerIntegration:
    def test_window_is_a_candidate(self, index):
        from repro.engine.planner import CANDIDATES, PlannerState

        assert "window" in CANDIDATES
        state = PlannerState.plan(parse_xpath("//a/b"), index)
        assert "window" in state.choice.costs

    def test_auto_runs_backward_paths_on_window(self, index):
        engine = Engine(index, strategy="auto")
        plan = engine.prepare("//b/ancestor::a")
        assert plan.strategy.name == "auto"
        state = plan.artifacts["planner"]
        # window is the only set-at-a-time candidate for backward axes.
        assert set(state.choice.costs) == {"window"}
        assert plan.select() == evaluate_reference(
            index.tree, parse_xpath("//b/ancestor::a")
        )
        assert state.active.name == "window"

    def test_optimized_not_priced_for_backward_paths(self, index):
        from repro.engine.planner import PlannerState

        state = PlannerState.plan(parse_xpath("//b/ancestor::a"), index)
        assert "optimized" not in state.choice.costs

    def test_forward_paths_price_all_candidates(self, index):
        from repro.engine.planner import PlannerState

        state = PlannerState.plan(parse_xpath("//a/b[c]"), index)
        assert {"vectorized", "window", "optimized"} <= set(
            state.choice.costs
        )


class TestBucketCache:
    def test_lru_bound_and_counters(self, monkeypatch):
        monkeypatch.setattr(window, "BUCKET_CACHE_SIZE", 2)
        index = TreeIndex(BinaryTree.from_document(parse_xml(XML)))
        enc = WindowEncoding(index)
        cand = np.arange(index.tree.n, dtype=np.int64)
        for key in ((1,), (2,), (3,)):
            enc.buckets(key, cand)
        assert enc.cache_info()["size"] == 2
        assert enc.cache_info()["evictions"] == 1
        assert enc.cache_info()["misses"] == 3
        enc.buckets((3,), cand)  # still resident
        assert enc.cache_info()["hits"] == 1

    def test_repeated_execution_hits_cache(self, index):
        index = TreeIndex(
            BinaryTree.from_document(parse_xml(XML))
        )  # fresh: no shared encoding state
        engine = Engine(index, strategy="window")
        plan = engine.prepare("//a/b")
        plan.execute()
        enc = get_encoding(index)
        misses = enc.cache_info()["misses"]
        plan.execute()
        info = enc.cache_info()
        assert info["misses"] == misses  # no re-partitioning
        assert info["hits"] > 0

    def test_encoding_survives_pickling(self, index):
        import pickle

        enc = get_encoding(index)
        clone = pickle.loads(pickle.dumps(enc))
        assert clone.post.tolist() == enc.post.tolist()
        clone.buckets((1,), np.arange(3, dtype=np.int64))  # lock works


class TestCounters:
    def test_child_join_books_bucket_slices_only(self, index):
        stats = EvalStats()
        window.evaluate(parse_xpath("/site/a"), index, stats)
        # The child join touches only the depth-1 slice of the 'a'
        # candidates, not the whole array.
        assert stats.visited <= index.labels.count("a") + 1
        assert stats.selected == 1
        assert stats.jumps >= 1

    def test_probes_count_batched_searches(self, index):
        stats = EvalStats()
        window.evaluate(parse_xpath("//b/ancestor::a"), index, stats)
        assert stats.index_probes > 0

    def test_predicate_candidates_are_counted(self, index):
        plain, with_pred = EvalStats(), EvalStats()
        window.evaluate(parse_xpath("//a"), index, plain)
        window.evaluate(parse_xpath("//a[.//b]"), index, with_pred)
        assert with_pred.visited > plain.visited
