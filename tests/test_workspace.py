"""Multi-document Workspace: shared compiled queries, batch execution."""

import pytest

from repro import Workspace
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

D1 = "<r><a><b/></a><b/></r>"
D2 = "<r><b/><a><b/><b/></a></r>"
D3 = "<r><c><a><b/></a></c></r>"


@pytest.fixture()
def workspace():
    ws = Workspace()
    ws.add("d1", D1)
    ws.add("d2", D2)
    ws.add("d3", D3)
    return ws


class TestDocumentManagement:
    def test_add_returns_engine_and_registers(self, workspace):
        assert workspace.documents() == ["d1", "d2", "d3"]
        assert len(workspace) == 3
        assert "d2" in workspace and "nope" not in workspace

    def test_duplicate_name_rejected(self, workspace):
        with pytest.raises(ValueError, match="d1"):
            workspace.add("d1", D2)

    def test_unknown_document_rejected(self, workspace):
        with pytest.raises(KeyError, match="registered"):
            workspace.engine("nope")

    def test_remove(self, workspace):
        workspace.remove("d2")
        assert workspace.documents() == ["d1", "d3"]


class TestCrossDocumentQueries:
    def test_select_all_matches_reference_per_document(self, workspace):
        results = workspace.select_all("//a/b")
        assert set(results) == {"d1", "d2", "d3"}
        for name, ids in results.items():
            tree = workspace.engine(name).tree
            assert ids == evaluate_reference(tree, parse_xpath("//a/b")), name

    def test_select_all_shares_one_compilation(self, workspace):
        workspace.select_all("//a/b")
        # All three documents are element-only: one inventory key, one
        # compile; the other executions are cache hits.
        assert workspace.cache.compilations == 1
        assert workspace.cache.hits == 2
        a1 = workspace.engine("d1").compile("//a/b")
        a2 = workspace.engine("d3").compile("//a/b")
        assert a1 is a2

    def test_count_all(self, workspace):
        assert workspace.count_all("//b") == {"d1": 2, "d2": 3, "d3": 1}

    def test_select_single_document(self, workspace):
        assert workspace.select("//a/b", document="d2") == [3, 4]


class TestBatches:
    def test_select_many_single_document(self, workspace):
        out = workspace.select_many(["//a", "//b"], document="d2")
        assert out == {"//a": [2], "//b": [1, 3, 4]}

    def test_select_many_all_documents(self, workspace):
        out = workspace.select_many(["//a/b"])
        assert set(out) == {"d1", "d2", "d3"}
        assert out["d2"]["//a/b"] == [3, 4]

    def test_batch_compiles_each_query_once(self, workspace):
        workspace.select_many(["//a", "//b", "//a/b"])
        assert workspace.cache.compilations == 3

    def test_prepare_through_workspace(self, workspace):
        plan = workspace.prepare("//a/b", document="d1")
        assert list(plan.execute().ids) == [2]
        assert workspace.prepare("//a/b", document="d1") is plan

    def test_execute_returns_independent_results(self, workspace):
        r1 = workspace.execute("//b", document="d1")
        r2 = workspace.execute("//b", document="d2")
        assert r1.stats is not r2.stats
        assert (r1.stats.selected, r2.stats.selected) == (2, 3)


class TestWorkspaceConfiguration:
    def test_strategy_applies_to_all_documents(self):
        ws = Workspace(strategy="naive")
        ws.add("d1", D1)
        assert ws.engine("d1").strategy == "naive"
        assert ws.select("//a/b", document="d1") == [2]

    def test_unknown_strategy_surfaces_on_add(self):
        ws = Workspace(strategy="warp")
        with pytest.raises(ValueError):
            ws.add("d1", D1)

    def test_encoded_documents_get_distinct_cache_keys(self):
        ws = Workspace(encode_attributes=True)
        ws.add("d1", '<r><a id="1"/></r>')
        ws.add("d2", '<r><b id="2"/></r>')
        ws.select_all("//*")
        # Different element inventories => two compilations of the same
        # wildcard query, not a shared (wrong) automaton.
        assert ws.cache.compilations == 2
        e1, e2 = ws.engine("d1"), ws.engine("d2")
        assert e1.labels_of(ws.select("//*", document="d1")) == ["r", "a"]
        assert e2.labels_of(ws.select("//*", document="d2")) == ["r", "b"]
