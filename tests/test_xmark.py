"""XMark generator and Figure 5 configurations."""

import pytest

from repro.tree.binary import BinaryTree
from repro.xmark.configs import CONFIG_SPECS, make_config, make_config_tree
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import HYBRID_QUERY, QUERIES, query


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = XMarkGenerator(scale=0.1, seed=3).tree()
        b = XMarkGenerator(scale=0.1, seed=3).tree()
        assert a.n == b.n
        assert a.label_of == b.label_of

    def test_different_seeds_differ(self):
        a = XMarkGenerator(scale=0.1, seed=3).tree()
        b = XMarkGenerator(scale=0.1, seed=4).tree()
        assert a.n != b.n or a.label_of != b.label_of

    def test_scale_grows_roughly_linearly(self):
        small = XMarkGenerator(scale=0.1, seed=1).tree().n
        large = XMarkGenerator(scale=0.4, seed=1).tree().n
        assert 2.5 < large / small < 6

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            XMarkGenerator(scale=0)

    def test_root_is_site_with_sections(self):
        doc = XMarkGenerator(scale=0.05).document()
        assert doc.root.label == "site"
        sections = [c.label for c in doc.root.children]
        assert sections == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_all_query_labels_present(self):
        hist = XMarkGenerator(scale=0.3, seed=2).tree().label_histogram()
        for label in (
            "site", "regions", "europe", "item", "mailbox", "mail", "text",
            "keyword", "closed_auctions", "closed_auction", "annotation",
            "description", "parlist", "listitem", "people", "person",
            "address", "phone", "homepage", "emph",
        ):
            assert hist.get(label, 0) > 0, label

    def test_queries_nonempty_at_moderate_scale(self, xmark_index):
        """Every Figure 2 query should select something (except none)."""
        from repro.engine import optimized
        from repro.xpath.compiler import compile_xpath

        empty = []
        for qid, q in QUERIES.items():
            _, sel = optimized.evaluate(compile_xpath(q), xmark_index)
            if not sel:
                empty.append(qid)
        assert empty == [], f"queries with empty results: {empty}"

    def test_keyword_emph_nesting_exists(self):
        tree = XMarkGenerator(scale=0.3, seed=2).tree()
        nested = [
            v
            for v in range(tree.n)
            if tree.label(v) == "emph" and tree.label(tree.parent[v]) == "keyword"
        ]
        assert nested


class TestQueries:
    def test_query_lookup(self):
        assert query("Q05") == "//listitem//keyword"
        assert len(QUERIES) == 15

    def test_hybrid_query_is_chain(self):
        from repro.xpath.parser import parse_xpath

        assert parse_xpath(HYBRID_QUERY).is_descendant_chain()


class TestConfigs:
    @pytest.mark.parametrize("name", sorted(CONFIG_SPECS))
    def test_structure_at_small_fraction(self, name):
        spec = CONFIG_SPECS[name]
        tree = make_config_tree(name, fraction=0.02)
        hist = tree.label_histogram()
        assert hist["listitem"] >= 1
        assert hist.get("keyword", 0) >= 1
        assert hist.get("emph", 0) == min(spec.emphs, hist.get("emph", spec.emphs))

    def test_config_c_keywords_mostly_outside_listitems(self):
        tree = make_config_tree("C", fraction=0.05)
        inside = 0
        outside = 0
        for v in range(tree.n):
            if tree.label(v) != "keyword":
                continue
            labels = {tree.label(a) for a in tree.ancestors(v)}
            if "listitem" in labels:
                inside += 1
            else:
                outside += 1
        assert inside == 1
        assert outside > inside

    def test_config_d_single_hot_listitem(self):
        tree = make_config_tree("D", fraction=0.05)
        with_kw = set()
        for v in range(tree.n):
            if tree.label(v) == "keyword":
                for a in tree.ancestors(v):
                    if tree.label(a) == "listitem":
                        with_kw.add(a)
        assert len(with_kw) == 1

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            make_config("Z")


class TestSerialization:
    def test_xml_round_trip(self):
        from repro.tree.parser import parse_xml

        gen = XMarkGenerator(scale=0.05, seed=6, text_content=True)
        text = gen.xml()
        reparsed = BinaryTree.from_document(parse_xml(text))
        direct = gen.tree()
        assert reparsed.n == direct.n
        assert reparsed.label_of == direct.label_of

    def test_text_content_flag(self):
        doc = XMarkGenerator(scale=0.05, seed=6, text_content=True).document()
        texts = [n for n in doc.preorder() if n.label == "text" and n.text]
        assert texts

    def test_text_encoding_end_to_end(self):
        from repro import Engine

        doc = XMarkGenerator(scale=0.05, seed=6, text_content=True).document()
        engine = Engine(doc, encode_text=True)
        assert engine.count("//text/text()") > 0
        assert engine.count("//keyword[text()]") > 0
