"""XPath lexer/parser over the Definition C.1 fragment."""

import pytest

from repro.xmark.queries import QUERIES
from repro.xpath.ast import Axis, Path, PredAnd, PredNot, PredOr, PredPath
from repro.xpath.parser import XPathSyntaxError, parse_xpath


class TestBasicPaths:
    def test_absolute_child(self):
        p = parse_xpath("/site/regions")
        assert p.absolute
        assert [(s.axis, s.test) for s in p.steps] == [
            (Axis.CHILD, "site"),
            (Axis.CHILD, "regions"),
        ]

    def test_descendant_abbreviation(self):
        p = parse_xpath("//a//b")
        assert p.absolute
        assert all(s.axis is Axis.DESCENDANT for s in p.steps)

    def test_mixed_axes(self):
        p = parse_xpath("/a//b/c")
        assert [s.axis for s in p.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT,
            Axis.CHILD,
        ]

    def test_explicit_axis(self):
        p = parse_xpath("/site/descendant::keyword")
        assert p.steps[1].axis is Axis.DESCENDANT
        assert p.steps[1].test == "keyword"

    def test_following_sibling(self):
        p = parse_xpath("/a/following-sibling::b")
        assert p.steps[1].axis is Axis.FOLLOWING_SIBLING

    def test_attribute_abbreviation(self):
        p = parse_xpath("/a/@id")
        assert p.steps[1].axis is Axis.ATTRIBUTE
        assert p.steps[1].test == "id"

    def test_wildcard_and_node_tests(self):
        p = parse_xpath("/a/*/node()/text()")
        assert [s.test for s in p.steps] == ["a", "*", "node()", "text()"]

    def test_relative_path(self):
        p = parse_xpath("a/b")
        assert not p.absolute

    def test_context_dot_descendant(self):
        p = parse_xpath(".//keyword")
        assert not p.absolute
        assert p.steps[0].axis is Axis.DESCENDANT

    def test_dot_alone(self):
        p = parse_xpath(".")
        assert not p.absolute and p.steps == ()


class TestPredicates:
    def test_simple_existence(self):
        p = parse_xpath("//a[b]")
        pred = p.steps[0].predicate
        assert isinstance(pred, PredPath)
        assert pred.path.steps[0].test == "b"

    def test_boolean_precedence_or_lowest(self):
        p = parse_xpath("//a[b and c or d]")
        pred = p.steps[0].predicate
        assert isinstance(pred, PredOr)
        assert isinstance(pred.left, PredAnd)

    def test_parentheses(self):
        p = parse_xpath("//a[b and (c or d)]")
        pred = p.steps[0].predicate
        assert isinstance(pred, PredAnd)
        assert isinstance(pred.right, PredOr)

    def test_not(self):
        p = parse_xpath("//a[not(b or c)]")
        pred = p.steps[0].predicate
        assert isinstance(pred, PredNot)
        assert isinstance(pred.inner, PredOr)

    def test_nested_predicates(self):
        p = parse_xpath("//a[b[c]]")
        outer = p.steps[0].predicate
        inner = outer.path.steps[0].predicate
        assert isinstance(inner, PredPath)

    def test_multiple_predicates_conjoined(self):
        p = parse_xpath("//a[b][c]")
        pred = p.steps[0].predicate
        assert isinstance(pred, PredAnd)

    def test_dotslashslash_in_predicate(self):
        p = parse_xpath("//a[ .//b ]")
        pred = p.steps[0].predicate
        assert pred.path.steps[0].axis is Axis.DESCENDANT

    def test_relative_child_chain_in_predicate(self):
        p = parse_xpath("//a[ b/c/d ]")
        steps = p.steps[0].predicate.path.steps
        assert [s.test for s in steps] == ["b", "c", "d"]
        assert all(s.axis is Axis.CHILD for s in steps)


class TestPaperQueries:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_all_figure2_queries_parse(self, qid):
        p = parse_xpath(QUERIES[qid])
        assert p.absolute
        assert p.steps

    def test_q07_structure(self):
        p = parse_xpath(QUERIES["Q07"])
        pred = p.steps[2].predicate
        assert isinstance(pred, PredAnd)
        assert isinstance(pred.right, PredOr)

    def test_q14_explicit_descendant(self):
        p = parse_xpath(QUERIES["Q14"])
        assert p.steps[1].axis is Axis.DESCENDANT


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "/",
            "//",
            "/a[",
            "/a]",
            "/a[]",
            "/a[b or]",
            "/a[(b]",
            "/a/",
            "a b",
            "/a[b)(c]",
            "/$x",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(text)

    def test_str_roundtrip_reparses(self):
        for q in QUERIES.values():
            p = parse_xpath(q)
            again = parse_xpath(str(p))
            assert str(again) == str(p)


class TestStructuredErrors:
    """Syntax errors carry a machine-readable offset and render a caret."""

    @pytest.mark.parametrize(
        "text, offset",
        [
            ("/a[", 3),
            ("//a[", 4),
            ("/a]", 2),
            ("/a[b or]", 7),
            ("/$x", 1),
            ("a b", 2),
        ],
    )
    def test_offset_points_at_the_failure(self, text, offset):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath(text)
        assert excinfo.value.offset == offset
        assert excinfo.value.query == text

    def test_offset_appears_in_str(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("//a[b(")
        assert "(offset 5)" in str(excinfo.value)

    def test_to_dict_is_the_daemon_error_payload(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("//a[b(")
        payload = excinfo.value.to_dict()
        assert payload["kind"] == "syntax"
        assert payload["offset"] == 5
        assert payload["query"] == "//a[b("
        assert "expected" in payload["message"]

    def test_describe_renders_a_caret(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("//a[b(")
        lines = excinfo.value.describe().splitlines()
        assert lines[0].startswith("syntax error:")
        assert lines[1] == "  //a[b("
        assert lines[2] == "  " + " " * 5 + "^"

    def test_error_without_context_still_renders(self):
        err = XPathSyntaxError("boom")
        assert err.offset is None
        assert err.describe() == "syntax error: boom"
        assert err.to_dict() == {"kind": "syntax", "message": "boom"}
